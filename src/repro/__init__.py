"""repro — a full reproduction of Vega (ASPLOS'24).

Vega is a bottom-up workflow for proactive, runtime detection of
aging-related silent data corruptions.  The package rebuilds the paper's
entire stack in pure Python: a gate-level netlist substrate, RTL
synthesis, bit-parallel simulation, BTI aging models, aging-aware static
timing analysis, a CDCL SAT solver + bounded model checker, failure-model
instrumentation, a RISC-V-style CPU with gate-level co-simulation,
embench-style workloads, and two test-integration backends.

Quickstart::

    from repro import VegaWorkflow, VegaConfig
    from repro.cpu.alu_design import build_alu

    workflow = VegaWorkflow(VegaConfig())
    report = workflow.run(build_alu())
"""

from .core.config import VegaConfig
from .core.workflow import VegaWorkflow

__version__ = "1.0.0"

__all__ = ["VegaConfig", "VegaWorkflow", "__version__"]
