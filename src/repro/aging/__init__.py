"""Transistor-aging models: BTI/HCI physics, timing-library characterization."""

from .bti import (
    BOLTZMANN_EV,
    SECONDS_PER_YEAR,
    BtiParameters,
    DEFAULT_BTI,
    cell_delta_vth,
    delay_factor,
    delta_vth,
    recovery_fraction,
)
from .charlib import AgingTimingLibrary, CellAgingTable, degradation_curve
from .corners import OperatingCorner, TYPICAL_CORNER, WORST_CORNER
from .hci import (
    DEFAULT_HCI,
    HciParameters,
    cell_delta_vth_hci,
    delta_vth_hci,
    transition_density,
)
from .em import (
    DEFAULT_EM,
    EmParameters,
    EmReport,
    IrDropReport,
    electromigration_analysis,
    ir_drop_analysis,
)

__all__ = [
    "BOLTZMANN_EV",
    "SECONDS_PER_YEAR",
    "BtiParameters",
    "DEFAULT_BTI",
    "cell_delta_vth",
    "delay_factor",
    "delta_vth",
    "recovery_fraction",
    "AgingTimingLibrary",
    "CellAgingTable",
    "degradation_curve",
    "OperatingCorner",
    "TYPICAL_CORNER",
    "WORST_CORNER",
    "DEFAULT_HCI",
    "HciParameters",
    "cell_delta_vth_hci",
    "delta_vth_hci",
    "transition_density",
    "DEFAULT_EM",
    "EmParameters",
    "EmReport",
    "IrDropReport",
    "electromigration_analysis",
    "ir_drop_analysis",
]
