#!/usr/bin/env python3
"""Profile-guided test integration (§3.4.2) on a real workload.

Profiles the crc32 benchmark, picks a routinely-but-not-hotly executed
basic block, splices the aging tests there (with a probability gate if
the overhead budget demands it), and compares cycle counts — the
mechanism behind Figure 9.

Run:  python examples/profile_guided_demo.py
"""

from repro.core.config import ErrorLiftingConfig, TestIntegrationConfig
from repro.cpu.alu_design import build_alu
from repro.cpu.cosim import GateAluBackend
from repro.cpu.cpu import run_program
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.integration.profile import ProfileGuidedIntegrator, profile_application
from repro.lifting.lifter import ErrorLifter
from repro.lifting.instrument import make_failing_netlist
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sta.timing import TimingViolation
from repro.workloads import WORKLOADS


def main() -> None:
    app = WORKLOADS["crc32"].source
    baseline = run_program(app)
    print(f"crc32 baseline: {baseline.cycles} cycles, "
          f"checksum {baseline.exit_value:#010x}\n")

    print("[1/3] Profiling basic blocks ...")
    profile = profile_application(app)
    for label, count in sorted(profile.labelled_counts().items()):
        share = count / profile.total_instructions
        print(f"  {label:10s} executed {count:5d}x  ({share:6.2%} share)")

    print("\n[2/3] Building tests and splicing ...")
    alu = build_alu()
    lifter = ErrorLifter(alu, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r2", "res_q_r5", ("u",), 6.1, 6.0
    )
    library = AgingLibrary(
        name="demo", test_cases=lifter.lift_pair(violation).test_cases
    )
    integrator = ProfileGuidedIntegrator(
        library, TestIntegrationConfig(overhead_threshold=0.01)
    )
    integrated = integrator.integrate(app)
    plan = integrated.plan
    print(f"  integration point: {plan.label!r} "
          f"(runs {plan.block_count}x)")
    print(f"  estimated overhead: {plan.estimated_overhead:.2%}; "
          f"probability gate: every {plan.gate_period} visits")

    print("\n[3/3] Measuring ...")
    result, fault = integrated.run()
    overhead = result.cycles / baseline.cycles - 1.0
    print(f"  integrated run: {result.cycles} cycles "
          f"({overhead:+.2%} vs baseline), result preserved: "
          f"{result.exit_value == baseline.exit_value}, fault={fault}")

    model = FailureModel("a_q_r2", "res_q_r5", ViolationKind.SETUP, CMode.ONE)
    failing = make_failing_netlist(alu, model)
    result, fault = integrated.run(alu=GateAluBackend(failing.netlist))
    print(f"  with injected aging failure: fault detected = {fault}")


if __name__ == "__main__":
    main()
