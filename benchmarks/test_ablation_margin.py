"""Ablation — sign-off clock margin vs aging-violation exposure.

The derived clock period leaves ``clock_margin`` of positive slack at
sign-off; aging must erode that margin before violations appear.  The
sweep shows the design choice's sensitivity: tighter margins expose
(many) more aging-prone paths, wide margins hide them all — bounding
the 3% default used in the main experiments.
"""

from repro.aging.charlib import AgingTimingLibrary
from repro.core.config import AgingAnalysisConfig
from repro.netlist.cells import VEGA28
from repro.sta.aging_sta import AgingAwareSta

MARGINS = (0.01, 0.02, 0.03, 0.045, 0.06, 0.08)


def test_ablation_clock_margin_sweep(ctx, benchmark, recorder):
    alu = ctx.alu.netlist
    profile = ctx.alu.sp_profile
    timing_lib = AgingTimingLibrary.characterize(VEGA28)

    def analyze(margin):
        sta = AgingAwareSta(
            alu,
            timing_lib,
            config=AgingAnalysisConfig(
                clock_margin=margin, max_paths_per_endpoint=100
            ),
        )
        return sta.analyze(profile)

    rows = ["margin | period(ns) | setup paths | pairs | WNS(ps) | fresh ok"]
    counts = {}
    for margin in MARGINS:
        result = analyze(margin)
        report = result.report
        counts[margin] = len(report.setup_violations())
        rows.append(
            f"{margin:6.3f} | {result.period_ns:10.3f} | "
            f"{counts[margin]:11d} | "
            f"{len(report.unique_endpoint_pairs()):5d} | "
            f"{report.wns_setup_ns*1000:7.1f} | "
            f"{not result.fresh_report.violations}"
        )
        recorder.sample(
            "ablation_clock_margin", "setup_paths", counts[margin],
            "paths", margin=margin, unit="alu",
        )
    recorder.table("ablation_clock_margin", "\n".join(rows))

    # Monotone: more margin, fewer (or equal) violating paths.
    ordered = [counts[m] for m in MARGINS]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    # The sweep brackets the interesting region.
    assert ordered[0] > 0
    assert ordered[-1] == 0

    result = benchmark(analyze, 0.03)
    assert result.report is not None
