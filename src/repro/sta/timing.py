"""Graph-based static timing analysis with setup and hold checks.

This module is the repo's Innovus-timing substitute.  It propagates
earliest/latest arrival times through a levelized netlist, checks every
flip-flop's setup and hold constraints under on-chip-variation derates,
and enumerates the complete set of violating paths (bounded per
endpoint) so that Error Lifting can target each unique start/end pair.

Conventions:

* Launch clock uses the *late* arrival view for setup checks and the
  *early* view for hold checks; capture clock uses the opposite — the
  standard pessimistic pairing.
* Primary inputs launch at t=0 (they are register outputs of the
  enclosing design); primary outputs are unconstrained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..aging.corners import OperatingCorner, WORST_CORNER
from ..netlist.netlist import Instance, Net, Netlist


@dataclass
class DelayModel:
    """Per-instance aged delays plus per-DFF clock arrivals.

    Attributes:
        delays: instance name -> (tmin, tmax) in ns, *before* corner
            derating (the STA applies the corner).
        clock_early: DFF instance name -> earliest clock arrival (ns).
        clock_late: DFF instance name -> latest clock arrival (ns).
        corner: OCV/PVT corner to analyze at.
    """

    delays: Dict[str, Tuple[float, float]]
    clock_early: Dict[str, float] = field(default_factory=dict)
    clock_late: Dict[str, float] = field(default_factory=dict)
    corner: OperatingCorner = WORST_CORNER

    @classmethod
    def fresh(
        cls, netlist: Netlist, corner: OperatingCorner = WORST_CORNER
    ) -> "DelayModel":
        """Un-aged delays straight from the cell library."""
        return cls(
            delays={
                inst.name: (inst.ctype.tmin, inst.ctype.tmax)
                for inst in netlist.instances.values()
            },
            corner=corner,
        )

    def tmax(self, inst: Instance) -> float:
        return self.corner.scale_max_delay(self.delays[inst.name][1])

    def tmin(self, inst: Instance) -> float:
        return self.corner.scale_min_delay(self.delays[inst.name][0])

    def clk_early(self, inst: Instance) -> float:
        return self.clock_early.get(inst.name, 0.0)

    def clk_late(self, inst: Instance) -> float:
        return self.clock_late.get(inst.name, 0.0)


@dataclass
class TimingViolation:
    """One violating signal-propagation path.

    ``start`` and ``end`` are instance names for DFF-to-DFF paths; the
    start may also be a primary-input net name.  ``cells`` lists the
    combinational instances along the path, source to sink.
    """

    kind: str  # "setup" | "hold"
    start: str
    end: str
    cells: Tuple[str, ...]
    arrival: float
    required: float
    start_is_port: bool = False

    @property
    def slack(self) -> float:
        if self.kind == "setup":
            return self.required - self.arrival
        return self.arrival - self.required

    @property
    def endpoint_pair(self) -> Tuple[str, str]:
        return (self.start, self.end)


@dataclass
class StaReport:
    """Aggregate result of one STA run."""

    netlist_name: str
    period_ns: float
    violations: List[TimingViolation] = field(default_factory=list)
    wns_setup_ns: float = float("inf")  # worst (most negative) setup slack
    wns_hold_ns: float = float("inf")
    truncated: bool = False

    def setup_violations(self) -> List[TimingViolation]:
        return [v for v in self.violations if v.kind == "setup"]

    def hold_violations(self) -> List[TimingViolation]:
        return [v for v in self.violations if v.kind == "hold"]

    def unique_endpoint_pairs(self, kind: Optional[str] = None) -> List[Tuple[str, str]]:
        """Distinct (start, end) pairs, preserving worst-first order.

        The paper filters its 11 + 1,366 violating paths down to 6 + 41
        unique pairs this way, generating one test per pair (§5.2.1).
        """
        seen: Set[Tuple[str, str]] = set()
        pairs: List[Tuple[str, str]] = []
        for violation in sorted(self.violations, key=lambda v: v.slack):
            if kind is not None and violation.kind != kind:
                continue
            if violation.start_is_port:
                continue
            pair = violation.endpoint_pair
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        return pairs

    def representative_violations(self) -> List[TimingViolation]:
        """Worst violation per unique endpoint pair."""
        best: Dict[Tuple[str, str], TimingViolation] = {}
        for violation in self.violations:
            if violation.start_is_port:
                continue
            pair = violation.endpoint_pair
            if pair not in best or violation.slack < best[pair].slack:
                best[pair] = violation
        return sorted(best.values(), key=lambda v: v.slack)


class StaticTimingAnalyzer:
    """Arrival-time propagation and constraint checking for one netlist."""

    def __init__(self, netlist: Netlist, delays: DelayModel):
        self.netlist = netlist
        self.delays = delays
        self._order = netlist.levelize()
        self._arrival_max: Dict[str, float] = {}
        self._arrival_min: Dict[str, float] = {}
        self._propagated = False

    # -- arrival propagation -------------------------------------------
    def _source_arrivals(self, net: Net, late: bool) -> Optional[float]:
        """Arrival at a source net (DFF Q), else None.

        Primary inputs are *unconstrained*: module-level STA without I/O
        constraints does not time port-launched paths, matching the
        paper's focus on internal flop-to-flop paths.
        """
        if net.driver is None:
            return None
        inst = net.driver[0]
        if inst.ctype.is_seq:
            if late:
                return self.delays.clk_late(inst) + self.delays.tmax(inst)
            return self.delays.clk_early(inst) + self.delays.tmin(inst)
        return None

    def propagate(self) -> None:
        """Fill max/min arrival times for every net, in levelized order."""
        for net in self.netlist.nets.values():
            if net.is_input:
                # Unconstrained: transparent to max/min propagation.
                self._arrival_max[net.name] = float("-inf")
                self._arrival_min[net.name] = float("inf")
                continue
            late = self._source_arrivals(net, late=True)
            if late is not None:
                self._arrival_max[net.name] = late
                self._arrival_min[net.name] = self._source_arrivals(
                    net, late=False
                )
        for inst in self._order:
            ins = inst.input_nets()
            if not ins:
                # TIE cells: constants never transition, so they must
                # not create timing events.  -inf/+inf arrivals make
                # them transparent to max/min propagation and endpoint
                # checks alike.
                self._arrival_max[inst.output_net.name] = float("-inf")
                self._arrival_min[inst.output_net.name] = float("inf")
                continue
            in_max = max(self._arrival_max[n.name] for n in ins)
            in_min = min(self._arrival_min[n.name] for n in ins)
            self._arrival_max[inst.output_net.name] = in_max + self.delays.tmax(inst)
            self._arrival_min[inst.output_net.name] = in_min + self.delays.tmin(inst)
        self._propagated = True

    def arrival_max(self, net_name: str) -> float:
        if not self._propagated:
            self.propagate()
        return self._arrival_max[net_name]

    def arrival_min(self, net_name: str) -> float:
        if not self._propagated:
            self.propagate()
        return self._arrival_min[net_name]

    def critical_delay(self) -> float:
        """Largest D-pin arrival plus setup: the minimum workable period.

        Ignores clock skew (used to derive a fresh design's target
        frequency the way sign-off would).
        """
        if not self._propagated:
            self.propagate()
        worst = 0.0
        for dff in self.netlist.dffs():
            arrival = self._arrival_max[dff.pins["D"].name]
            worst = max(worst, arrival + dff.ctype.setup)
        return worst

    # -- checking --------------------------------------------------------
    def check(
        self,
        period_ns: float,
        max_paths_per_endpoint: int = 400,
        max_total_paths: int = 20000,
    ) -> StaReport:
        """Run setup and hold checks; enumerate violating paths."""
        if not self._propagated:
            self.propagate()
        import math

        report = StaReport(netlist_name=self.netlist.name, period_ns=period_ns)
        total = 0
        for dff in self.netlist.dffs():
            d_net = dff.pins["D"]
            if math.isinf(self._arrival_max[d_net.name]):
                continue  # constant-fed flop: no transitions to time
            setup_required = (
                period_ns + self.delays.clk_early(dff) - dff.ctype.setup
            )
            arrival = self._arrival_max[d_net.name]
            slack = setup_required - arrival
            report.wns_setup_ns = min(report.wns_setup_ns, slack)
            if slack < 0:
                paths = self._enumerate(
                    d_net,
                    dff,
                    limit=setup_required,
                    late=True,
                    cap=max_paths_per_endpoint,
                )
                if len(paths) == max_paths_per_endpoint:
                    report.truncated = True
                report.violations.extend(paths)
                total += len(paths)

            hold_required = self.delays.clk_late(dff) + dff.ctype.hold
            arrival_min = self._arrival_min[d_net.name]
            hold_slack = arrival_min - hold_required
            report.wns_hold_ns = min(report.wns_hold_ns, hold_slack)
            if hold_slack < 0:
                paths = self._enumerate(
                    d_net,
                    dff,
                    limit=hold_required,
                    late=False,
                    cap=max_paths_per_endpoint,
                )
                if len(paths) == max_paths_per_endpoint:
                    report.truncated = True
                report.violations.extend(paths)
                total += len(paths)
            if total >= max_total_paths:
                report.truncated = True
                break
        return report

    def _enumerate(
        self,
        d_net: Net,
        capture: Instance,
        limit: float,
        late: bool,
        cap: int,
    ) -> List[TimingViolation]:
        """All source-to-endpoint paths violating ``limit`` (bounded).

        For setup (late=True) a path violates when its late arrival
        exceeds ``limit``; for hold (late=False) when its early arrival
        falls below ``limit``.  Pruning uses the per-net arrival bounds,
        so the walk only explores prefixes that can still violate.
        """
        arrivals = self._arrival_max if late else self._arrival_min
        results: List[TimingViolation] = []

        def violates(total: float) -> bool:
            return total > limit if late else total < limit

        def walk(net: Net, suffix: float, cells: Tuple[str, ...]) -> None:
            if len(results) >= cap:
                return
            bound = arrivals[net.name] + suffix
            if not violates(bound):
                return
            if net.driver is None:
                return  # unconstrained primary input
            inst = net.driver[0]
            if inst.ctype.is_seq:
                launch = self._source_arrivals(net, late)
                results.append(
                    TimingViolation(
                        kind="setup" if late else "hold",
                        start=inst.name,
                        end=capture.name,
                        cells=cells,
                        arrival=launch + suffix,
                        required=limit,
                    )
                )
                return
            delay = self.delays.tmax(inst) if late else self.delays.tmin(inst)
            for in_net in inst.input_nets():
                walk(in_net, suffix + delay, (inst.name,) + cells)

        walk(d_net, 0.0, ())
        return results
