"""Ablation — clock-gating duty vs hold-violation exposure (§2.3.1).

Clock gating is "a primary cause of uneven transistor aging" in the
clock network: gated branches age differently from free-running ones,
and the difference becomes launch/capture phase shift.  Sweeping the
FPU's gating duty shows (a) zero skew and healthy hold margins without
gating, and (b) a hold violation on the handshake path at *every*
non-zero duty.  Interestingly the aging *contrast* — and hence the
skew — peaks at intermediate duty: a branch gated ~50-80 % of the time
combines strong pull-up stress with residual switching stress (the
AC-stress square-root law), aging slightly faster than one parked
almost permanently.  The violation is marginal (~ -1 ps) across the
range, matching Table 3's character.
"""

from repro.aging.charlib import AgingTimingLibrary
from repro.core.config import AgingAnalysisConfig
from repro.core.experiments import CLOCK_CHAIN_LENGTH, FPU_ALWAYS_ON
from repro.netlist.cells import VEGA28
from repro.sta.aging_sta import AgingAwareSta

DUTIES = (0.0, 0.5, 0.8, 0.9, 0.96, 0.99)


def test_ablation_gating_duty_sweep(ctx, benchmark, recorder):
    fpu = ctx.fpu.netlist
    profile = ctx.fpu.sp_profile
    timing_lib = AgingTimingLibrary.characterize(VEGA28)
    config = AgingAnalysisConfig(clock_margin=0.03, max_paths_per_endpoint=50)

    def analyze(duty):
        gated = {
            d.name: duty
            for d in fpu.dffs()
            if d.name not in FPU_ALWAYS_ON
        }
        sta = AgingAwareSta(
            fpu,
            timing_lib,
            config=config,
            gated_instances=gated,
            clock_chain_length=CLOCK_CHAIN_LENGTH,
        )
        result = sta.analyze(profile)
        shift = sta.clock_tree.max_phase_shift(timing_lib)
        return result, shift

    rows = ["duty  | phase shift(ps) | hold WNS(ps) | hold paths"]
    wns_by_duty = {}
    shift_by_duty = {}
    for duty in DUTIES:
        result, shift = analyze(duty)
        report = result.report
        wns_by_duty[duty] = report.wns_hold_ns
        shift_by_duty[duty] = shift
        rows.append(
            f"{duty:5.2f} | {shift*1000:15.2f} | "
            f"{report.wns_hold_ns*1000:12.2f} | "
            f"{len(report.hold_violations())}"
        )
        recorder.sample(
            "ablation_gating_duty", "hold_paths",
            len(report.hold_violations()), "paths", duty=duty, unit="fpu",
        )
        recorder.sample(
            "ablation_gating_duty", "phase_shift", shift * 1000, "ps",
            duty=duty, unit="fpu",
        )
    recorder.table("ablation_gating_duty", "\n".join(rows))

    # Ungated: balanced tree, no skew, healthy hold margin.
    assert shift_by_duty[0.0] < 1e-6
    assert wns_by_duty[0.0] > 0
    # Any gating asymmetry produces real skew and breaks the direct
    # handshake path — marginally (|WNS| of a few ps), as in Table 3.
    for duty in DUTIES[1:]:
        assert shift_by_duty[duty] > 0.001
        assert -0.02 < wns_by_duty[duty] < 0

    result = benchmark(analyze, 0.96)
    assert result is not None
