"""Ablation — operating-corner pessimism (§3.2.2, §6.2).

The paper's Aging-Aware STA deliberately runs at the most pessimistic
PVT/OCV corner so that "the real world's failing paths would be
captured", accepting false positives.  Comparing against the typical
corner quantifies that pessimism: the worst corner must flag a superset
of the typical corner's paths.
"""

from repro.aging.charlib import AgingTimingLibrary
from repro.aging.corners import TYPICAL_CORNER, WORST_CORNER
from repro.core.config import AgingAnalysisConfig
from repro.netlist.cells import VEGA28
from repro.sta.aging_sta import AgingAwareSta


def test_ablation_corner_pessimism(ctx, benchmark, recorder):
    alu = ctx.alu.netlist
    profile = ctx.alu.sp_profile
    timing_lib = AgingTimingLibrary.characterize(VEGA28)
    config = AgingAnalysisConfig(clock_margin=0.03, max_paths_per_endpoint=100)

    def analyze(corner):
        sta = AgingAwareSta(alu, timing_lib, config=config, corner=corner)
        # Period derived at the *worst* corner in both runs: sign-off
        # happens once; only the analysis corner varies.
        period = AgingAwareSta(
            alu, timing_lib, config=config, corner=WORST_CORNER
        ).derive_period()
        return sta.analyze(profile, clock_period_ns=period)

    worst = analyze(WORST_CORNER)
    typical = analyze(TYPICAL_CORNER)

    rows = ["corner              | setup paths | pairs | WNS(ps)"]
    for corner, label, result in (
        ("worst", "worst (sign-off)", worst),
        ("typical", "typical", typical),
    ):
        report = result.report
        rows.append(
            f"{label:19s} | {len(report.setup_violations()):11d} | "
            f"{len(report.unique_endpoint_pairs()):5d} | "
            f"{report.wns_setup_ns*1000:7.1f}"
        )
        recorder.sample(
            "ablation_corner_pessimism", "setup_paths",
            len(report.setup_violations()), "paths", corner=corner,
            unit="alu",
        )
        recorder.sample(
            "ablation_corner_pessimism", "endpoint_pairs",
            len(report.unique_endpoint_pairs()), "pairs", corner=corner,
            unit="alu",
        )
    recorder.table("ablation_corner_pessimism", "\n".join(rows))

    worst_pairs = set(worst.report.unique_endpoint_pairs())
    typical_pairs = set(typical.report.unique_endpoint_pairs())
    # Conservatism: everything the typical corner flags, the worst
    # corner flags too (no false negatives from pessimism).
    assert typical_pairs <= worst_pairs
    # And the pessimism is real: strictly more paths at the worst corner.
    assert len(worst.report.setup_violations()) > len(
        typical.report.setup_violations()
    )

    result = benchmark(analyze, WORST_CORNER)
    assert result is not None
