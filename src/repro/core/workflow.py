"""End-to-end orchestration of the three Vega phases.

`VegaWorkflow` ties together Aging Analysis (phase 1), Error Lifting
(phase 2), and Test Integration (phase 3), mirroring Figure 2 of the
paper.  Each phase is independently callable for finer control; `run`
chains them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile
from .config import VegaConfig


@dataclass
class WorkflowReport:
    """Aggregated results of a full Vega run (filled per phase)."""

    netlist_name: str = ""
    sp_profile: Optional[SPProfile] = None
    sta_report: object = None
    lifting_report: object = None
    test_suite: object = None

    def summary(self) -> str:
        lines = [f"Vega workflow report for {self.netlist_name!r}"]
        if self.sta_report is not None:
            aged = self.sta_report.report
            lines.append(
                f"  aging-prone paths: {len(aged.violations)} "
                f"({len(aged.unique_endpoint_pairs())} unique pairs)"
            )
        if self.lifting_report is not None:
            lines.append(
                f"  test cases constructed: {len(self.lifting_report.test_cases)}"
            )
        if self.test_suite is not None:
            lines.append(f"  suite cycles: {self.test_suite.suite_cycles()}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """A full per-phase report, suitable for issue trackers/docs."""
        lines = [f"# Vega report — `{self.netlist_name}`", ""]
        if self.sta_report is not None:
            aged = self.sta_report.report
            fresh = self.sta_report.fresh_report
            lines += [
                "## Phase 1 — Aging Analysis",
                "",
                f"- sign-off period: **{self.sta_report.period_ns:.3f} ns** "
                f"({1000/self.sta_report.period_ns:.0f} MHz)",
                f"- fresh violations: **{len(fresh.violations)}**",
                f"- aged setup: **{len(aged.setup_violations())}** paths, "
                f"WNS {aged.wns_setup_ns*1000:.1f} ps",
                f"- aged hold: **{len(aged.hold_violations())}** paths, "
                f"WNS {aged.wns_hold_ns*1000:.2f} ps",
                "",
                "| start | end | kind |",
                "|---|---|---|",
            ]
            for violation in aged.representative_violations():
                lines.append(
                    f"| {violation.start} | {violation.end} "
                    f"| {violation.kind} |"
                )
            lines.append("")
        if self.lifting_report is not None:
            pct = self.lifting_report.outcome_percentages()
            lines += [
                "## Phase 2 — Error Lifting",
                "",
                f"- outcomes: S {pct['S']:.1f}% / UR {pct['UR']:.1f}% / "
                f"FF {pct['FF']:.1f}% / FC {pct['FC']:.1f}%",
                f"- test cases: **{len(self.lifting_report.test_cases)}**",
                "",
            ]
        if self.test_suite is not None:
            lines += [
                "## Phase 3 — Test Integration",
                "",
                f"- suite: **{len(self.test_suite.test_cases)}** tests, "
                f"**{self.test_suite.suite_cycles()}** cycles per pass",
                "",
            ]
        return "\n".join(lines)


class VegaWorkflow:
    """Drives the three phases of the Vega workflow on one module.

    Usage::

        workflow = VegaWorkflow(VegaConfig())
        report = workflow.run(design, operand_stream, clock_period_ns=6.0)
    """

    def __init__(self, config: Optional[VegaConfig] = None):
        self.config = config or VegaConfig()

    # Phase 1 ----------------------------------------------------------
    def run_aging_analysis(
        self,
        netlist: Netlist,
        operand_stream: Sequence[Mapping[str, int]],
        clock_period_ns: Optional[float] = None,
        gated_instances: Optional[Sequence[str]] = None,
    ):
        """SP profiling + aging-aware STA; returns an ``StaReport``."""
        from ..aging.charlib import AgingTimingLibrary
        from ..sim.probes import profile_operand_stream
        from ..sta.aging_sta import AgingAwareSta

        profile = profile_operand_stream(netlist, list(operand_stream))
        timing_lib = AgingTimingLibrary.characterize(
            netlist.library,
            lifetime_years=self.config.aging.lifetime_years,
            temperature_c=self.config.aging.temperature_c,
        )
        sta = AgingAwareSta(
            netlist,
            timing_lib,
            config=self.config.aging,
            gated_instances=gated_instances,
        )
        return profile, sta.analyze(profile, clock_period_ns=clock_period_ns)

    # Phase 2 ----------------------------------------------------------
    def run_error_lifting(
        self,
        netlist: Netlist,
        sta_report,
        isa_mapper,
        workers: Optional[int] = None,
    ):
        """Formal test construction for every unique endpoint pair.

        Accepts either a raw :class:`~repro.sta.timing.StaReport` or the
        :class:`~repro.sta.aging_sta.AgingStaResult` wrapper phase 1
        produces.  ``workers`` overrides ``config.lifting.workers`` for
        this run; pairs shard across processes with deterministic
        result ordering.
        """
        from ..lifting.lifter import ErrorLifter

        report = getattr(sta_report, "report", sta_report)
        lifter = ErrorLifter(netlist, self.config.lifting, isa_mapper)
        return lifter.lift(report, workers=workers)

    # Phase 3 ----------------------------------------------------------
    def build_aging_library(self, lifting_report, name: str = "vega_tests"):
        from ..integration.library_gen import AgingLibrary

        return AgingLibrary.from_lifting_report(
            lifting_report, name=name, seed=self.config.integration.random_seed
        )

    # Full chain -------------------------------------------------------
    def run(
        self,
        netlist: Netlist,
        operand_stream: Sequence[Mapping[str, int]],
        isa_mapper,
        clock_period_ns: Optional[float] = None,
        gated_instances: Optional[Sequence[str]] = None,
    ) -> WorkflowReport:
        report = WorkflowReport(netlist_name=netlist.name)
        report.sp_profile, report.sta_report = self.run_aging_analysis(
            netlist,
            operand_stream,
            clock_period_ns=clock_period_ns,
            gated_instances=gated_instances,
        )
        report.lifting_report = self.run_error_lifting(
            netlist, report.sta_report, isa_mapper
        )
        report.test_suite = self.build_aging_library(report.lifting_report)
        return report
