"""Gate-level co-simulation backends for the ISA simulator.

This mirrors the paper's Verilator setup (§5.1): "only these components
[ALU and FPU] are replaced with the placed-and-routed netlist; the
remainder of the CPU is simulated in SystemVerilog."  Here the rest of
the CPU is the Python ISA model, and the functional unit under test is a
:class:`GateSimulator` over either the healthy netlist or a *failing*
netlist produced by failure-model instrumentation.

The FPU backend honours the valid handshake: if the injected failure
kills the ``out_valid`` chain, the backend times out and raises
:class:`~repro.cpu.cpu.CpuStall` — the paper's "CPU stalls, application
stops progressing" detection mode.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..lifting.instrument import RANDOM_C_PORT
from ..netlist.netlist import Netlist
from ..sim.gatesim import GateSimulator
from .alu_design import ALU_LATENCY
from .cpu import CpuStall
from .mdu_design import MDU_LATENCY


class GateAluBackend:
    """Runs every ALU operation through a gate-level netlist.

    Each operation is issued and drained for the pipeline latency; the
    flop state is *not* reset between operations, so value history in
    the datapath persists exactly as it would on silicon — this is what
    makes some un-mitigated test cases miss (initial-value dependency,
    §3.3.4).
    """

    def __init__(self, netlist: Netlist, seed: int = 0):
        self.sim = GateSimulator(netlist)
        self._random_c = RANDOM_C_PORT in netlist.ports
        self._rng = random.Random(seed)
        self.operations = 0

    def _frame(self, op: int, a: int, b: int) -> dict:
        frame = {"op": op, "a": a, "b": b, "mode": 0, "dft": 0}
        if self._random_c:
            frame[RANDOM_C_PORT] = self._rng.getrandbits(1)
        return frame

    def execute(self, op: int, a: int, b: int) -> int:
        self.operations += 1
        self.sim.step(self._frame(op, a, b))
        out = {}
        for _ in range(ALU_LATENCY):
            # Hold the operands while draining: the next real operation
            # will overwrite them anyway, and holding avoids injecting
            # artificial toggles the software stream never produced.
            out = self.sim.step(self._frame(op, a, b))
        return out["result"]


class GateMduBackend:
    """Runs every multiply through a gate-level MDU netlist."""

    def __init__(self, netlist: Netlist, seed: int = 0):
        self.sim = GateSimulator(netlist)
        self._random_c = RANDOM_C_PORT in netlist.ports
        self._rng = random.Random(seed)
        self.operations = 0

    def _frame(self, op: int, a: int, b: int) -> dict:
        frame = {"op": op, "a": a, "b": b, "dft": 0}
        if self._random_c:
            frame[RANDOM_C_PORT] = self._rng.getrandbits(1)
        return frame

    def execute(self, op: int, a: int, b: int) -> int:
        self.operations += 1
        self.sim.step(self._frame(op, a, b))
        out = {}
        for _ in range(MDU_LATENCY):
            out = self.sim.step(self._frame(op, a, b))
        return out["result"]


class GateFpuBackend:
    """Runs every FPU operation through a gate-level netlist.

    Returns (result, flags); raises :class:`CpuStall` when the
    out_valid handshake never rises within ``timeout`` cycles.
    """

    def __init__(self, netlist: Netlist, seed: int = 0, timeout: int = 16):
        self.sim = GateSimulator(netlist)
        self._random_c = RANDOM_C_PORT in netlist.ports
        self._rng = random.Random(seed)
        self.timeout = timeout
        self.operations = 0

    def _frame(self, op: int, a: int, b: int, valid: int) -> dict:
        frame = {"op": op, "a": a, "b": b, "rm": 0, "in_valid": valid, "dft": 0}
        if self._random_c:
            frame[RANDOM_C_PORT] = self._rng.getrandbits(1)
        return frame

    def execute(self, op: int, a: int, b: int) -> Tuple[int, int]:
        self.operations += 1
        self.sim.step(self._frame(op, a, b, valid=1))
        for _ in range(self.timeout):
            out = self.sim.step(self._frame(op, a, b, valid=0))
            if out["out_valid"]:
                return out["result"], out["flags"]
        raise CpuStall(
            "FPU out_valid never asserted: handshake failure "
            "(aging-corrupted valid path)"
        )
