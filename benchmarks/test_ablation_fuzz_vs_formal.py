"""Ablation — fuzzing vs formal trace generation (§6.3).

The paper's future-work direction: "fast exploration of useful test
cases via random and fuzzing-based methods".  This benchmark runs both
generators over every unique ALU endpoint pair and compares coverage,
witness length, and — crucially — what each can and cannot conclude:

* on activatable faults, fuzzing usually finds a (longer) witness;
* on faults the BMC *proves* unrealizable (the UR pairs from the
  mission-constant DFT/SIMD-mode flops), fuzzing merely exhausts its
  budget, offering no guarantee.
"""

import time

from repro.formal.bmc import BmcStatus, BoundedModelChecker, CoverObjective
from repro.lifting.fuzz import FuzzTraceGenerator
from repro.lifting.instrument import instrument_for_cover
from repro.lifting.models import CMode, FailureModel, ViolationKind


def _models_for(unit):
    report = unit.sta_result.report
    for violation in report.representative_violations():
        kind = (
            ViolationKind.SETUP
            if violation.kind == "setup"
            else ViolationKind.HOLD
        )
        yield FailureModel(violation.start, violation.end, kind, CMode.ONE)


def test_ablation_fuzz_vs_formal(ctx, benchmark, recorder):
    unit = ctx.alu
    mapper = unit.mapper
    rows = [
        "pair                         | formal        | fuzz          | "
        "formal_depth | fuzz_depth | fuzz_trials"
    ]
    agreements = 0
    formal_proofs = 0
    fuzz_unknowns = 0
    cases = []
    for model in _models_for(unit):
        instr = instrument_for_cover(unit.netlist, model)
        bmc = BoundedModelChecker(
            instr.netlist, assumptions=mapper.assumptions()
        )
        formal = bmc.cover(
            CoverObjective(differ=instr.output_pairs), max_depth=4
        )
        fuzz = FuzzTraceGenerator(
            instr, assumptions=mapper.assumptions(), seed=11
        ).search(max_trials=300, max_depth=4)
        cases.append((model, instr))
        formal_covered = formal.status is BmcStatus.COVERED
        if formal_covered == fuzz.covered:
            agreements += 1
        if formal.status is BmcStatus.UNREACHABLE:
            formal_proofs += 1
            if not fuzz.covered:
                fuzz_unknowns += 1
        rows.append(
            f"{model.start:>9s}~>{model.end:<16s} | "
            f"{formal.status.value:13s} | "
            f"{'covered' if fuzz.covered else 'gave up':13s} | "
            f"{formal.trace.depth if formal.trace else '-':>12} | "
            f"{fuzz.trace.depth if fuzz.trace else '-':>10} | "
            f"{fuzz.trials:>11d}"
        )
    rows.append(
        f"agreement on coverable faults: {agreements}/{len(cases)}; "
        f"UR proofs formal-only: {formal_proofs} "
        f"(fuzzing inconclusive on {fuzz_unknowns})"
    )
    recorder.sample(
        "ablation_fuzz_vs_formal", "agreements", agreements, "pairs",
        unit="alu", bigger_is_better=True,
    )
    recorder.sample(
        "ablation_fuzz_vs_formal", "pairs_compared", len(cases), "pairs",
        unit="alu", bigger_is_better=True,
    )
    recorder.sample(
        "ablation_fuzz_vs_formal", "formal_only_proofs", formal_proofs,
        "pairs", unit="alu", bigger_is_better=True,
    )
    recorder.table("ablation_fuzz_vs_formal", "\n".join(rows))

    # Both methods agree wherever a verdict is possible.
    assert agreements == len(cases)
    # Formal uniquely proves the unrealizable pairs.
    assert formal_proofs >= 1
    assert fuzz_unknowns == formal_proofs

    # Benchmark one fuzz campaign on the first coverable pair.
    model, instr = cases[0]

    def run_fuzz():
        return FuzzTraceGenerator(
            instr, assumptions=mapper.assumptions(), seed=3
        ).search(max_trials=300, max_depth=4)

    result = benchmark(run_fuzz)
    assert result is not None
