"""Technology mapping from the RTL bit DAG onto the vega28 library.

This is the "Genus / Design Compiler" stage of the paper's flow: it turns
a :class:`repro.rtl.signal.Module` into a :class:`repro.netlist.Netlist`
of standard cells.  The mapper is deliberately simple — one cell per DAG
node — with a peephole pass that fuses inverters into NAND2/NOR2/XNOR2
where the inverted gate has a single use, exercising the full library.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..netlist.cells import CellLibrary, VEGA28
from ..netlist.netlist import Net, Netlist
from .signal import Bit, Module, RtlError

_OP_CELL = {"and": "AND2", "or": "OR2", "xor": "XOR2", "mux": "MUX2"}
_FUSED_CELL = {"and": "NAND2", "or": "NOR2", "xor": "XNOR2"}


def _count_uses(module: Module) -> Dict[int, int]:
    """Number of parents per DAG node, over everything reachable."""
    uses: Dict[int, int] = {}
    visited: set = set()
    stack: list = []
    for sig in module.outputs.values():
        stack.extend(sig.bits)
    for reg in module.registers.values():
        if reg.next is not None:
            stack.extend(reg.next.bits)
    while stack:
        bit = stack.pop()
        if id(bit) in visited:
            continue
        visited.add(id(bit))
        for arg in bit.args:
            uses[id(arg)] = uses.get(id(arg), 0) + 1
            stack.append(arg)
    return uses


def synthesize(
    module: Module,
    library: Optional[CellLibrary] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Map ``module`` to a gate-level netlist.

    Every input becomes an input port, every register a bank of DFFs,
    every output an output port (buffered so the port net has exactly
    one cell driver, as a place-and-route flow would guarantee).
    """
    library = library or VEGA28
    module.finalize()
    netlist = Netlist(name or module.name, library)
    uses = _count_uses(module)

    # Leaf nets: inputs and register outputs.
    bit_net: Dict[int, Net] = {}
    for in_name, sig in module.inputs.items():
        port = netlist.add_input_port(in_name, sig.width)
        for i, bit in enumerate(sig.bits):
            bit_net[id(bit)] = port.nets[i]

    dff_of: Dict[Tuple[str, int], object] = {}
    for reg in module.registers.values():
        for i in range(reg.width):
            q_net = netlist.add_net(f"{reg.name}_q[{i}]")
            # D pin is temporarily tied to q (self-loop is illegal for
            # combinational cells only); rewired after gate mapping.
            inst = netlist.add_instance(
                "DFF",
                {"D": q_net, "Q": q_net},
                name=f"{reg.name}_r{i}",
                init=(reg.init >> i) & 1,
            )
            # Undo the bogus self-load bookkeeping; rewire_input will
            # attach the real D source later.
            q_net.loads.clear()
            inst.pins["D"] = q_net
            q_net.loads.append((inst, "D"))
            dff_of[(reg.name, i)] = inst
            bit = reg.q.bits[i]
            bit_net[id(bit)] = q_net

    tie_cache: Dict[int, Net] = {}

    def tie(value: int) -> Net:
        net = tie_cache.get(value)
        if net is None:
            net = netlist.add_net(f"tie{value}")
            netlist.add_instance(
                f"TIE{value}", {"Y": net}, name=f"u_tie{value}"
            )
            tie_cache[value] = net
        return net

    def lower(bit: Bit) -> Net:
        """Emit gates for ``bit`` (iteratively, post-order) and return its net."""
        if id(bit) in bit_net:
            return bit_net[id(bit)]
        stack = [bit]
        while stack:
            cur = stack[-1]
            if id(cur) in bit_net:
                stack.pop()
                continue
            if cur.op == "const":
                bit_net[id(cur)] = tie(cur.tag)
                stack.pop()
                continue
            # Peephole: NOT over a single-use and/or/xor fuses into the
            # inverting cell.
            if (
                cur.op == "not"
                and cur.args[0].op in _FUSED_CELL
                and uses.get(id(cur.args[0]), 0) == 1
            ):
                inner = cur.args[0]
                pend = [a for a in inner.args if id(a) not in bit_net]
                if pend:
                    stack.extend(pend)
                    continue
                out = netlist.add_net()
                netlist.add_instance(
                    _FUSED_CELL[inner.op],
                    {
                        "A": bit_net[id(inner.args[0])],
                        "B": bit_net[id(inner.args[1])],
                        "Y": out,
                    },
                )
                bit_net[id(cur)] = out
                stack.pop()
                continue
            pend = [a for a in cur.args if id(a) not in bit_net]
            if pend:
                stack.extend(pend)
                continue
            out = netlist.add_net()
            if cur.op == "not":
                netlist.add_instance(
                    "INV", {"A": bit_net[id(cur.args[0])], "Y": out}
                )
            elif cur.op == "mux":
                a, b, s = cur.args
                netlist.add_instance(
                    "MUX2",
                    {
                        "A": bit_net[id(a)],
                        "B": bit_net[id(b)],
                        "S": bit_net[id(s)],
                        "Y": out,
                    },
                )
            elif cur.op in _OP_CELL:
                netlist.add_instance(
                    _OP_CELL[cur.op],
                    {
                        "A": bit_net[id(cur.args[0])],
                        "B": bit_net[id(cur.args[1])],
                        "Y": out,
                    },
                )
            else:  # pragma: no cover - leaves handled above
                raise RtlError(f"cannot map op {cur.op!r}")
            bit_net[id(cur)] = out
            stack.pop()
        return bit_net[id(bit)]

    # Register next-state logic.
    for reg in module.registers.values():
        assert reg.next is not None  # finalize() checked
        for i, bit in enumerate(reg.next.bits):
            src = lower(bit)
            inst = dff_of[(reg.name, i)]
            netlist.rewire_input(inst, "D", src)

    # Output ports, buffered.
    for out_name, sig in module.outputs.items():
        port = netlist.add_output_port(out_name, sig.width)
        for i, bit in enumerate(sig.bits):
            src = lower(bit)
            netlist.add_instance(
                "BUF",
                {"A": src, "Y": port.nets[i]},
                name=f"obuf_{out_name}_{i}",
            )

    netlist.validate()
    return netlist
