"""Tests for the RV32M multiply unit (design, ISA, co-simulation)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cosim import GateMduBackend
from repro.cpu.cpu import run_program
from repro.cpu.encoding import decode, encode
from repro.cpu.isa import Instruction
from repro.cpu.mdu_design import MduOp, build_mdu, mdu_reference
from repro.sim.gatesim import GateSimulator

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)

_MDU_CACHE = {}


def _mdu_sim():
    if "sim" not in _MDU_CACHE:
        _MDU_CACHE["sim"] = GateSimulator(build_mdu())
    return _MDU_CACHE["sim"]


class TestReferenceModel:
    @given(a=U32, b=U32)
    @settings(max_examples=60, deadline=None)
    def test_mul_matches_python(self, a, b):
        assert mdu_reference(int(MduOp.MUL), a, b) == (a * b) & 0xFFFFFFFF

    @given(a=U32, b=U32)
    @settings(max_examples=60, deadline=None)
    def test_mulhu_matches_python(self, a, b):
        assert mdu_reference(int(MduOp.MULHU), a, b) == (a * b) >> 32

    @given(a=U32, b=U32)
    @settings(max_examples=60, deadline=None)
    def test_mulh_matches_python(self, a, b):
        signed = lambda x: x - (1 << 32) if x >> 31 else x
        expected = ((signed(a) * signed(b)) >> 32) & 0xFFFFFFFF
        assert mdu_reference(int(MduOp.MULH), a, b) == expected

    @given(a=U32, b=U32)
    @settings(max_examples=60, deadline=None)
    def test_mulhsu_matches_python(self, a, b):
        signed = lambda x: x - (1 << 32) if x >> 31 else x
        expected = ((signed(a) * b) >> 32) & 0xFFFFFFFF
        assert mdu_reference(int(MduOp.MULHSU), a, b) == expected


class TestGateDesign:
    @given(op=st.sampled_from(list(MduOp)), a=U32, b=U32)
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, op, a, b):
        sim = _mdu_sim()
        sim.reset()
        frame = {"op": int(op), "a": a, "b": b, "dft": 0}
        sim.step(frame)
        sim.step(frame)
        out = sim.step(frame)
        assert out["result"] == mdu_reference(int(op), a, b)

    @pytest.mark.parametrize(
        "a,b",
        [
            (0, 0), (1, 1), (0xFFFFFFFF, 0xFFFFFFFF),
            (0x80000000, 0x80000000), (0x7FFFFFFF, 2),
            (0x80000000, 1), (0xFFFFFFFF, 0x80000000),
        ],
    )
    def test_corner_operands_all_ops(self, a, b):
        sim = _mdu_sim()
        for op in MduOp:
            sim.reset()
            frame = {"op": int(op), "a": a, "b": b, "dft": 0}
            sim.step(frame)
            sim.step(frame)
            out = sim.step(frame)
            assert out["result"] == mdu_reference(int(op), a, b)


class TestIsaIntegration:
    def test_mul_instruction(self):
        result = run_program(
            """
                li a1, 123456
                li a2, 789
                mul a0, a1, a2
                ecall
            """
        )
        assert result.exit_value == (123456 * 789) & 0xFFFFFFFF

    def test_mulh_signed(self):
        result = run_program(
            """
                li a1, -2
                li a2, 3
                mulh a0, a1, a2
                ecall
            """
        )
        assert result.exit_value == 0xFFFFFFFF  # high word of -6

    def test_mulhu_unsigned(self):
        result = run_program(
            """
                li a1, 0x80000000
                li a2, 4
                mulhu a0, a1, a2
                ecall
            """
        )
        assert result.exit_value == 2

    def test_gate_backend_in_program(self):
        source = """
            li a1, 1000003
            li a2, 999983
            mul a0, a1, a2
            ecall
        """
        golden = run_program(source)
        gated = run_program(source, mdu=GateMduBackend(build_mdu()))
        assert gated.exit_value == golden.exit_value

    def test_encoding_roundtrip(self):
        for name in ("mul", "mulh", "mulhsu", "mulhu"):
            instr = Instruction(name, rd=3, rs1=4, rs2=5)
            back = decode(encode(instr))
            assert back.mnemonic == name
            assert (back.rd, back.rs1, back.rs2) == (3, 4, 5)

    def test_mul_spec_encoding_golden(self):
        # mul x1, x2, x3 = 0x023100b3 (funct7=1)
        assert encode(Instruction("mul", rd=1, rs1=2, rs2=3)) == 0x023100B3


class TestFailureInjection:
    def test_failing_mdu_detected_by_direct_probe(self):
        from repro.lifting.instrument import make_failing_netlist
        from repro.lifting.models import CMode, FailureModel, ViolationKind

        mdu = build_mdu()
        model = FailureModel(
            "a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE
        )
        failing = make_failing_netlist(mdu, model)
        backend = GateMduBackend(failing.netlist)
        golden = mdu_reference(int(MduOp.MUL), 0, 0)
        backend.execute(int(MduOp.MUL), 0, 0)
        corrupted = backend.execute(int(MduOp.MUL), 1, 0)  # a[0] rises
        assert corrupted != mdu_reference(int(MduOp.MUL), 1, 0)
