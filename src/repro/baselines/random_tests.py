"""Random test-suite baseline for Table 7 (§5.2.3).

The paper's comparison point: "a random test suite generator that
produces test cases in the style and quantity of Vega's trace-generated
test cases: each case verifies the functional correctness of a single
random instruction from the current module's instruction set, using
random inputs."
"""

from __future__ import annotations

import random
from typing import List

from ..cpu.alu_design import VALID_ALU_OPS, AluOp, alu_reference
from ..cpu.fpu_design import VALID_FPU_OPS, FpuOp, fpu_reference
from ..cpu.mappers import ALU_MNEMONIC, FPU_MNEMONIC, MDU_MNEMONIC
from ..cpu.mdu_design import VALID_MDU_OPS, MduOp, mdu_reference
from ..integration.library_gen import AgingLibrary
from ..lifting.models import CMode, FailureModel, ViolationKind
from ..lifting.testcase import TestCase, TestInstruction

_PLACEHOLDER = FailureModel(
    "random", "random", ViolationKind.SETUP, CMode.ZERO
)


def random_alu_test(rng: random.Random, name: str) -> TestCase:
    op = rng.choice(VALID_ALU_OPS)
    a = rng.getrandbits(32)
    b = rng.getrandbits(32)
    case = TestCase(name=name, unit="alu", model=_PLACEHOLDER)
    case.instructions.append(
        TestInstruction(
            mnemonic=ALU_MNEMONIC[AluOp(op)],
            operands={"rs1": a, "rs2": b},
            expected=alu_reference(op, a, b),
        )
    )
    return case


def random_fpu_test(rng: random.Random, name: str) -> TestCase:
    op = rng.choice(VALID_FPU_OPS)
    a = rng.getrandbits(16)
    b = rng.getrandbits(16)
    value, flags = fpu_reference(op, a, b)
    case = TestCase(name=name, unit="fpu", model=_PLACEHOLDER)
    case.instructions.append(
        TestInstruction(
            mnemonic=FPU_MNEMONIC[FpuOp(op)],
            operands={"rs1": a, "rs2": b},
            expected=value,
            expected_flags=flags,
        )
    )
    return case


def random_mdu_test(rng: random.Random, name: str) -> TestCase:
    op = rng.choice(VALID_MDU_OPS)
    a = rng.getrandbits(32)
    b = rng.getrandbits(32)
    case = TestCase(name=name, unit="mdu", model=_PLACEHOLDER)
    case.instructions.append(
        TestInstruction(
            mnemonic=MDU_MNEMONIC[MduOp(op)],
            operands={"rs1": a, "rs2": b},
            expected=mdu_reference(op, a, b),
        )
    )
    return case


_MAKERS = {
    "alu": random_alu_test,
    "fpu": random_fpu_test,
    "mdu": random_mdu_test,
}


def random_suite(
    unit: str,
    count: int,
    seed: int = 0,
    name: str = "random_tests",
) -> AgingLibrary:
    """A random suite with ``count`` single-instruction tests."""
    try:
        maker = _MAKERS[unit]
    except KeyError:
        raise ValueError(f"unknown unit {unit!r}") from None
    rng = random.Random(seed)
    library = AgingLibrary(name=name, seed=seed)
    for index in range(count):
        library.test_cases.append(maker(rng, f"rnd_{unit}_{index}"))
    return library
