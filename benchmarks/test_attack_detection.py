"""Detection lead of Vega vs random on attacker-accelerated fleets.

The adversary engine's headline claim: an attacker who crafts operand
streams maximizing BTI stress on the ALU's violating cones pulls
device onsets forward, and — at exactly equal suite budget — the Vega
suite converts that acceleration into *earlier* detections while the
random baseline leaves more attacked devices as escapes.

The benchmark runs the full scenario: beam-search the attacker stream,
materialize the natural fleet and its attack twin (same individuals,
accelerated onsets), run both through the unchanged campaign engine
with the ``vega`` and ``random`` suites, and record the per-suite
detection lead in devices and in years of onset advance.

``VEGA_SMOKE=1`` shrinks the search and the fleet so CI exercises
every path quickly; the determinism and pairing contracts still hold
exactly.
"""

import os
import time

from repro.adversary import (
    AttackReport,
    AttackSearch,
    sample_attack_fleet,
)
from repro.campaign import CampaignEngine
from repro.campaign.fleet import sample_fleet
from repro.core.config import AdversaryConfig, CampaignConfig

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
DEVICES = 6 if SMOKE else 16
BASE_ONSET = 6.0

SEARCH = AdversaryConfig(
    seed=99,
    candidates=4 if SMOKE else 8,
    rounds=2 if SMOKE else 3,
    beam=2 if SMOKE else 3,
    mutations=2 if SMOKE else 4,
    stream_ops=48 if SMOKE else 192,
    lanes=16 if SMOKE else 64,
    workers=2,
)
CONFIG = CampaignConfig(
    devices=DEVICES,
    seed=2024,
    shard_size=4,
    workers=2,
    suites=("vega", "random"),
    base_onset_years=BASE_ONSET,
)


def test_attack_detection(ctx, benchmark, recorder):
    unit = ctx.alu
    library = unit.suite(False)
    models = unit.failure_models()
    pairs = unit.sta_result.report.unique_endpoint_pairs()

    start = time.perf_counter()
    search = AttackSearch(
        unit.netlist, "alu", unit.sp_profile, pairs, config=SEARCH
    )
    result, _stream = search.run()
    search_time = time.perf_counter() - start

    natural_fleet = sample_fleet(CONFIG, models, BASE_ONSET)
    attack_fleet = sample_attack_fleet(
        CONFIG, models, BASE_ONSET, result.acceleration,
        attack_seed=SEARCH.seed,
    )

    def run_fleet(fleet):
        return CampaignEngine(
            unit.netlist, "alu", library, models,
            config=CONFIG, base_onset_years=BASE_ONSET, fleet=fleet,
        ).run()

    run_fleet(natural_fleet)  # warm compile / assembly caches

    start = time.perf_counter()
    natural = run_fleet(natural_fleet)
    attack = run_fleet(attack_fleet)
    campaign_time = time.perf_counter() - start

    report = AttackReport.from_campaigns(
        result, natural_fleet, attack_fleet, natural, attack,
        attack_fraction=1.0, attack_seed=SEARCH.seed,
        budget_instructions=CONFIG.max_suite_instructions,
    )

    # Scenario sanity: the attack only ever pulls onsets forward, and
    # at equal budget no suite detects fewer devices on the attack
    # fleet than on the natural one.
    assert result.acceleration >= 1.0
    assert report.attack["faulty"] >= report.natural["faulty"]
    assert report.onset_lead_years_mean >= 0.0
    for suite in report.suites:
        assert report.detection_lead_devices[suite] >= 0

    recorder.sample(
        "attack_detection", "stress_ratio", report.stress_ratio,
        "ratio", seed=SEARCH.seed, devices=DEVICES,
        bigger_is_better=True,
    )
    recorder.sample(
        "attack_detection", "acceleration", report.acceleration,
        "ratio", seed=SEARCH.seed, devices=DEVICES,
        bigger_is_better=True,
    )
    recorder.sample(
        "attack_detection", "onset_lead_years_mean",
        report.onset_lead_years_mean, "years", devices=DEVICES,
        seed=CONFIG.seed, bigger_is_better=True,
    )
    recorder.sample(
        "attack_detection", "newly_faulty", report.newly_faulty,
        "devices", devices=DEVICES, seed=CONFIG.seed,
    )
    for suite in report.suites:
        recorder.sample(
            "attack_detection", "detection_lead_devices",
            report.detection_lead_devices[suite], "devices",
            suite=suite, devices=DEVICES, seed=CONFIG.seed,
            bigger_is_better=True,
        )
        recorder.sample(
            "attack_detection", "detection_lead_years",
            report.detection_lead_years[suite], "years",
            suite=suite, devices=DEVICES, seed=CONFIG.seed,
            bigger_is_better=True,
        )
    recorder.sample(
        "attack_detection", "vega_lead_minus_random",
        report.detection_lead_devices["vega"]
        - report.detection_lead_devices["random"],
        "devices", devices=DEVICES, seed=CONFIG.seed,
        bigger_is_better=True,
    )
    recorder.sample(
        "attack_detection", "search_wall_time", search_time,
        "seconds", evaluations=result.evaluations, timing=True,
    )
    recorder.sample(
        "attack_detection", "campaign_wall_time", campaign_time,
        "seconds", devices=DEVICES, timing=True,
    )

    rows = [
        f"ALU attack-fleet detection lead: {DEVICES} devices, "
        f"suites vega+random at equal budget"
        + (" [smoke]" if SMOKE else ""),
        f"search: {result.evaluations} candidates in {search_time:.1f}s, "
        f"stress {result.natural_stress:.4f} -> {result.best_stress:.4f} "
        f"(accel {report.acceleration:.2f}x)",
        f"fleet: +{report.newly_faulty} newly faulty, onset lead mean "
        f"{report.onset_lead_years_mean:.2f}y / max "
        f"{report.onset_lead_years_max:.2f}y",
        "suite  | natural det | attack det | lead (dev) | lead (years)",
    ]
    for suite in report.suites:
        nat_det = sum(
            1 for row in report.device_rows
            if suite in row["natural_detected_by"]
        )
        att_det = sum(
            1 for row in report.device_rows
            if suite in row["attack_detected_by"]
        )
        rows.append(
            f"{suite:6s} | {nat_det:11d} | {att_det:10d} "
            f"| {report.detection_lead_devices[suite]:+10d} "
            f"| {report.detection_lead_years[suite]:12.2f}"
        )
    recorder.table("attack_detection", "\n".join(rows))

    report2 = benchmark(lambda: run_fleet(attack_fleet))
    assert report2.to_json() == attack.to_json()
