"""Gate-level IEEE-754 binary16 FPU of the repo's RISC-V-style core.

Substitution note (see DESIGN.md): the paper evaluates FPnew, a 32-bit
multi-format FPU.  A full FP32 datapath is intractable for a pure-Python
bounded model checker, so this design implements the same pipeline
structure and the same code paths — operand alignment, significand
add/multiply, leading-zero normalization, round-to-nearest-even,
subnormals, and the five RISC-V status flags — at binary16 width.

Pipeline: stage 1 registers operands/opcode/valid; stage 2 registers the
computed result, flags, and the output-valid handshake bit.  The
``v_q -> ov_q`` chain is a direct flop-to-flop path: exactly the kind of
short path that aging-induced clock phase shift turns into a hold
violation, and whose failure stalls the CPU (Table 6's "S" entries).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional, Tuple

from ..netlist.cells import CellLibrary, VEGA28
from ..netlist.netlist import Netlist
from ..rtl.signal import Module, Signal, leading_zero_count, mux, mux_by_index
from ..rtl.synth import synthesize
from . import float16 as sf

BIAS = 15


class FpuOp(IntEnum):
    """Opcode encoding of the ``op`` input port."""

    FADD = 0
    FSUB = 1
    FMUL = 2
    FMIN = 3
    FMAX = 4
    FEQ = 5
    FLT = 6
    FLE = 7


VALID_FPU_OPS = tuple(int(op) for op in FpuOp)

FPU_LATENCY = 2


def _fields(x: Signal) -> Tuple[Signal, Signal, Signal]:
    """(sign, exp, man) of a 16-bit operand signal."""
    return x[15], x[10:15], x[:10]


def _classify(x: Signal):
    s, e, man = _fields(x)
    e_zero = ~e.any()
    e_max = e.all()
    m_zero = ~man.any()
    return {
        "sign": s,
        "exp": e,
        "man": man,
        "is_zero": e_zero & m_zero,
        "is_sub": e_zero & ~m_zero,
        "is_inf": e_max & m_zero,
        "is_nan": e_max & ~m_zero,
        "is_snan": e_max & ~m_zero & ~man[9],
        # 11-bit significand with the implicit bit materialized.
        "sig": man.concat(~e_zero),
        # Effective biased exponent (subnormals use 1).
        "eeff": mux(e_zero, e, x.module.const(1, 5)),
    }


def _sticky_shr(sig: Signal, amount: Signal) -> Signal:
    """Right shift, OR-ing every lost bit into the result's LSB."""
    m = sig.module
    ones = m.const((1 << sig.width) - 1, sig.width)
    lost_mask = ~(ones.shl(amount))
    lost = (sig & lost_mask).any()
    return sig.shr(amount) | lost.zext(sig.width)


def _normalize_round(
    m: Module, sign: Signal, exp8: Signal, sig24: Signal, rm: Signal
) -> Tuple[Signal, Signal]:
    """Normalize/round ``sig24 * 2^(exp8 - BIAS - 13)`` to binary16.

    ``rm`` selects the rounding mode (RISC-V encoding: RNE/RTZ/RDN/RUP;
    other encodings behave as RNE).  Returns (bits16, partial_flags5)
    where flags cover OF/UF/NX; the caller merges NV from its
    special-case logic.  This mirrors ``float16._norm_round_pack`` gate
    for gate.
    """
    lzc = leading_zero_count(sig24)  # 5 bits, value 24 for zero input
    # norm_exp = exp8 + 10 - lzc  (leading one moves to bit 13)
    norm_exp = exp8 + m.const(10, 8) - lzc.zext(8)

    need_left = m.const(10, 5).ule(lzc)
    left_amount = (lzc - m.const(10, 5)).zext(5)
    right_amount = (m.const(10, 5) - lzc).zext(5)
    sig_left = sig24.shl(left_amount)[:14]
    sig_right = _sticky_shr(sig24, right_amount)[:14]
    norm14 = mux(need_left, sig_right, sig_left)

    # Subnormal pre-shift: biased exponent <= 0 -> slide right so the
    # result encodes with exponent field 0.
    is_tiny = norm_exp.sle(m.const(0, 8))
    denorm = (m.const(1, 8) - norm_exp)[:6]
    tiny14 = _sticky_shr(norm14, denorm)
    pre14 = mux(is_tiny, norm14, tiny14)
    exp_pre = mux(is_tiny, norm_exp, m.const(1, 8))

    # Rounding decision by mode.
    guard = pre14[2]
    rnd = pre14[1]
    stk = pre14[0]
    keep11 = pre14[3:14]
    inexact = guard | rnd | stk
    rne_up = guard & (rnd | stk | keep11[0])
    rtz_up = m.const(0, 1)
    rdn_up = sign & inexact
    rup_up = ~sign & inexact
    round_up = mux_by_index(rm, [rne_up, rtz_up, rdn_up, rup_up])
    rounded12 = keep11.zext(12) + round_up.zext(12)
    man_ovf = rounded12[11]
    sig11 = mux(man_ovf, rounded12[:11], rounded12[1:12])
    exp_rnd = exp_pre + man_ovf.zext(8)

    implicit = sig11[10]
    overflow = m.const(31, 8).sle(exp_rnd) & implicit
    exp_field = mux(implicit, m.const(0, 5), exp_rnd[:5])
    bits = sig11[:10].concat(exp_field, sign)
    # Overflow result depends on the mode: RNE -> inf; RTZ -> max
    # finite; RDN/RUP -> inf only when rounding away from zero.
    inf_bits = m.const(0, 10).concat(m.const(31, 5), sign)
    max_bits = m.const(0x3FF, 10).concat(m.const(30, 5), sign)
    to_inf = mux_by_index(
        rm, [m.const(1, 1), m.const(0, 1), sign, ~sign]
    )
    ovf_bits = mux(to_inf, max_bits, inf_bits)
    bits = mux(overflow, bits, ovf_bits)

    nx = inexact | overflow
    uf = ~implicit & inexact & ~overflow
    of = overflow
    flags = nx.concat(uf, of, m.const(0, 1), m.const(0, 1))  # NX UF OF DZ NV
    return bits, flags


def _signed_less(m: Module, a: Signal, b: Signal, cls_a, cls_b) -> Signal:
    """Sign-magnitude 'a < b' matching ``float16._signed_less``."""
    sa, sb = cls_a["sign"], cls_b["sign"]
    mag_lt = a[:15].ult(b[:15])
    mag_gt = b[:15].ult(a[:15])
    less_same_sign = mux(sa, mag_lt, mag_gt)
    # Differing signs: the negative operand is smaller, and -0 < +0
    # for min/max purposes (RISC-V), so the sign alone decides.
    return mux(sa ^ sb, less_same_sign, sa)


def build_fpu_module() -> Module:
    """The FPU as an RTL module (pre-synthesis)."""
    m = Module("fpu")
    op = m.input("op", 3)
    a_in = m.input("a", 16)
    b_in = m.input("b", 16)
    rm_in = m.input("rm", 3)
    in_valid = m.input("in_valid", 1)
    # DFT/BIST pattern injection at the operand unpack stage; see the
    # ALU's dft input for the rationale (mission mode ties it low).
    dft = m.input("dft", 1)

    op_q = m.register("op_q", 3)
    a_q = m.register("a_q", 16)
    b_q = m.register("b_q", 16)
    rm_q = m.register("rm_q", 3)
    v_q = m.register("v_q", 1)
    dft_q = m.register("dft_q", 1)
    op_q.next = op
    a_q.next = a_in
    b_q.next = b_in
    rm_q.next = rm_in
    v_q.next = in_valid
    dft_q.next = dft
    rm = rm_q.q

    a = a_q.q ^ (m.const(0xA5A5, 16) & dft_q.q.repeat(16))
    b = b_q.q ^ (m.const(0x5A5A, 16) & dft_q.q.repeat(16))
    ca, cb = _classify(a), _classify(b)
    canonical_nan = m.const(sf.CANONICAL_NAN, 16)
    any_snan = ca["is_snan"] | cb["is_snan"]
    any_nan = ca["is_nan"] | cb["is_nan"]

    def flags5(nv: Signal, base: Optional[Signal] = None) -> Signal:
        tail = base if base is not None else m.const(0, 4)
        return tail[:4].concat(nv)

    # ------------------------------------------------------------------
    # FADD / FSUB
    # ------------------------------------------------------------------
    is_sub_op = op_q.q.eq(int(FpuOp.FSUB))
    sb_eff = cb["sign"] ^ is_sub_op

    a_ge_b = ~a[:15].ult(b[:15])
    big_sig = mux(a_ge_b, cb["sig"], ca["sig"])
    small_sig = mux(a_ge_b, ca["sig"], cb["sig"])
    big_exp = mux(a_ge_b, cb["eeff"], ca["eeff"])
    small_exp = mux(a_ge_b, ca["eeff"], cb["eeff"])
    big_sign = mux(a_ge_b, sb_eff, ca["sign"])
    small_sign = mux(a_ge_b, ca["sign"], sb_eff)

    diff_exp = big_exp - small_exp
    big14 = big_sig.zext(14).shl_const(3)
    small14 = _sticky_shr(small_sig.zext(14).shl_const(3), diff_exp)
    same_sign = ~(big_sign ^ small_sign)
    total_sum = big14.zext(15) + small14.zext(15)
    total_diff = big14.zext(15) - small14.zext(15)
    total = mux(same_sign, total_diff, total_sum)
    cancel = ~same_sign & ~total.any()
    # Exact cancellation yields +0, except round-down which gives -0.
    cancel_sign = rm.eq(sf.RM_RDN)
    add_sign = mux(cancel, big_sign, cancel_sign)
    add_bits, add_flags = _normalize_round(
        m, add_sign, big_exp.zext(8), total[:15].zext(24), rm
    )

    # Special cases for add/sub.
    inf_conflict = ca["is_inf"] & cb["is_inf"] & (ca["sign"] ^ sb_eff)
    any_inf = ca["is_inf"] | cb["is_inf"]
    inf_sign = mux(ca["is_inf"], sb_eff, ca["sign"])
    inf_value = m.const(0, 10).concat(m.const(31, 5), inf_sign)
    add_result = mux(any_inf, add_bits, inf_value)
    add_result = mux(inf_conflict, add_result, canonical_nan)
    add_result = mux(any_nan, add_result, canonical_nan)
    add_nv = any_snan | (inf_conflict & ~any_nan)
    add_flags_final = mux(
        any_nan | any_inf, add_flags, m.const(0, 5)
    )
    add_flags_final = flags5(add_nv, add_flags_final)

    # ------------------------------------------------------------------
    # FMUL
    # ------------------------------------------------------------------
    mul_sign = ca["sign"] ^ cb["sign"]
    product = ca["sig"] * cb["sig"]  # 22 bits
    mul_exp = ca["eeff"].zext(8) + cb["eeff"].zext(8) + m.const(-22, 8)
    mul_bits, mul_flags = _normalize_round(
        m, mul_sign, mul_exp, product.zext(24), rm
    )
    inf_times_zero = (ca["is_inf"] & cb["is_zero"]) | (
        cb["is_inf"] & ca["is_zero"]
    )
    mul_any_inf = ca["is_inf"] | cb["is_inf"]
    mul_inf = m.const(0, 10).concat(m.const(31, 5), mul_sign)
    mul_result = mux(mul_any_inf, mul_bits, mul_inf)
    mul_result = mux(inf_times_zero, mul_result, canonical_nan)
    mul_result = mux(any_nan, mul_result, canonical_nan)
    mul_nv = any_snan | (inf_times_zero & ~any_nan)
    mul_flags_final = mux(
        any_nan | mul_any_inf, mul_flags, m.const(0, 5)
    )
    mul_flags_final = flags5(mul_nv, mul_flags_final)

    # ------------------------------------------------------------------
    # Comparisons and min/max
    # ------------------------------------------------------------------
    less = _signed_less(m, a, b, ca, cb)
    both_zero = ca["is_zero"] & cb["is_zero"]
    eq_sem = a.eq(b) | both_zero

    feq_bits = (eq_sem & ~any_nan).zext(16)
    feq_flags = flags5(any_snan)
    # IEEE flt: +/-0 compare equal (unlike the min/max ordering).
    flt_bits = (less & ~any_nan & ~both_zero).zext(16)
    flt_flags = flags5(any_nan)
    fle_bits = ((less | eq_sem) & ~any_nan).zext(16)
    fle_flags = flags5(any_nan)

    # Tie-break on bit equality: min(+0, -0) must yield -0, and the
    # semantic +/-0 equality would wrongly pick the first operand.
    pick_a_min = less | a.eq(b)
    min_numeric = mux(pick_a_min, b, a)
    max_numeric = mux(less, a, b)
    min_bits = mux(
        ca["is_nan"],
        mux(cb["is_nan"], min_numeric, a),
        mux(cb["is_nan"], b, canonical_nan),
    )
    max_bits = mux(
        ca["is_nan"],
        mux(cb["is_nan"], max_numeric, a),
        mux(cb["is_nan"], b, canonical_nan),
    )
    minmax_flags = flags5(any_snan)

    # ------------------------------------------------------------------
    # Result selection and output stage
    # ------------------------------------------------------------------
    results = [
        add_result,       # FADD
        add_result,       # FSUB (sign flip folded into the adder)
        mul_result,       # FMUL
        min_bits,         # FMIN
        max_bits,         # FMAX
        feq_bits,         # FEQ
        flt_bits,         # FLT
        fle_bits,         # FLE
    ]
    flag_arms = [
        add_flags_final,
        add_flags_final,
        mul_flags_final,
        minmax_flags,
        minmax_flags,
        feq_flags,
        flt_flags,
        fle_flags,
    ]
    res_q = m.register("res_q", 16)
    fl_q = m.register("fl_q", 5)
    ov_q = m.register("ov_q", 1)
    res_q.next = mux_by_index(op_q.q, results)
    fl_q.next = mux_by_index(op_q.q, flag_arms)
    ov_q.next = v_q.q  # direct flop-to-flop handshake path

    m.output("result", res_q.q)
    m.output("flags", fl_q.q)
    m.output("out_valid", ov_q.q)
    return m


def build_fpu(library: Optional[CellLibrary] = None) -> Netlist:
    """Synthesized FPU netlist on the vega28 library."""
    return synthesize(build_fpu_module(), library or VEGA28)


def fpu_reference(op: int, a: int, b: int, rm: int = 0) -> Tuple[int, int]:
    """Golden software model: (result bits, flags)."""
    operation = FpuOp(op)
    if operation is FpuOp.FADD:
        return sf.fp16_add(a, b, rm=rm)
    if operation is FpuOp.FSUB:
        return sf.fp16_add(a, b, subtract=True, rm=rm)
    if operation is FpuOp.FMUL:
        return sf.fp16_mul(a, b, rm=rm)
    if operation is FpuOp.FMIN:
        return sf.fp16_min(a, b)
    if operation is FpuOp.FMAX:
        return sf.fp16_max(a, b)
    if operation is FpuOp.FEQ:
        return sf.fp16_eq(a, b)
    if operation is FpuOp.FLT:
        return sf.fp16_lt(a, b)
    return sf.fp16_le(a, b)
