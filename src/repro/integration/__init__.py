"""Test integration: aging library generation + profile-guided splicing."""

from .library_gen import (
    AgingFaultDetected,
    AgingLibrary,
    DetectionResult,
    FAULT_SENTINEL,
    render_test_body,
)
from .profile import (
    BlockProfile,
    IntegratedApplication,
    IntegrationPlan,
    ProfileGuidedIntegrator,
    profile_application,
)

__all__ = [
    "AgingFaultDetected",
    "AgingLibrary",
    "DetectionResult",
    "FAULT_SENTINEL",
    "render_test_body",
    "BlockProfile",
    "IntegratedApplication",
    "IntegrationPlan",
    "ProfileGuidedIntegrator",
    "profile_application",
]

from .response import (
    FallbackResponse,
    FaultAction,
    Incident,
    ProtectedResult,
    RetireResponse,
    RetryResponse,
    run_with_protection,
)

__all__ += [
    "FallbackResponse",
    "FaultAction",
    "Incident",
    "ProtectedResult",
    "RetireResponse",
    "RetryResponse",
    "run_with_protection",
]
