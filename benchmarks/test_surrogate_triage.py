"""Surrogate-triage campaign vs the exact packed pipeline.

The aging surrogate exists to amortize the exact per-device pipeline
(charlib characterization + aging STA onset scan) across a fleet: the
ridge model scores every sampled device in microseconds, the cleared
cohort never touches the exact pipeline, and only the predicted-risky
tail is re-analyzed exactly and run through the campaign engine.

This benchmark trains the surrogate on a 96-row labeled sweep of the
ALU (fails closed below the 0.95 held-out recall floor), then times
one fleet through two paths:

* **exact**: every device pays the exact oracle onset scan, then the
  packed campaign engine runs the whole fleet;
* **triage**: the surrogate clears the safe cohort; only the flagged
  tail pays the oracle and the engine.

Acceptance (non-smoke): triage is at least 3x the exact path in
devices/sec, risky-tail recall over the fleet's true (exact) onsets is
at least 0.95, and the tail's report rows are byte-identical to the
corresponding rows of the exact campaign — the speedup is never
allowed to change a flagged device's verdict.

``VEGA_SMOKE=1`` shrinks the fleet and relaxes the speedup floor so CI
can exercise every path quickly; recall and byte-identity still hold
exactly.
"""

import json
import os
import time

from repro.campaign import CampaignEngine
from repro.core.config import CampaignConfig, SurrogateConfig
from repro.netlist.cells import VEGA28
from repro.surrogate import (
    generate_dataset,
    profiled_fleet,
    run_surrogate_campaign,
    train_surrogate,
)

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
DEVICES = 16 if SMOKE else 64
MIN_SPEEDUP = 1.2 if SMOKE else 3.0
RECALL_FLOOR = 0.95

SURROGATE = SurrogateConfig(workers=2)
CONFIG = CampaignConfig(
    devices=DEVICES,
    seed=2024,
    shard_size=8,
    suites=("vega",),
    base_onset_years=6.0,
)


def test_surrogate_triage(ctx, benchmark, recorder):
    unit = ctx.alu
    library = unit.suite(False)
    models = unit.failure_models()

    train_start = time.perf_counter()
    dataset = generate_dataset(
        unit.netlist, VEGA28, unit.sp_profile, SURROGATE
    )
    model, validation = train_surrogate(dataset, SURROGATE)
    train_time = time.perf_counter() - train_start

    def exact_path():
        fleet = profiled_fleet(
            unit.netlist, VEGA28, unit.sp_profile, models,
            CONFIG, SURROGATE,
        )
        report = CampaignEngine(
            unit.netlist, "alu", library, models,
            config=CONFIG,
            base_onset_years=CONFIG.base_onset_years,
            fleet=fleet,
        ).run()
        return fleet, report

    def triage_path():
        return run_surrogate_campaign(
            unit.netlist, "alu", library, VEGA28, unit.sp_profile,
            models, model,
            config=CONFIG, surrogate=SURROGATE,
            base_onset_years=CONFIG.base_onset_years,
        )

    triage_path()  # warm compile / assembly / netlist caches

    start = time.perf_counter()
    exact_fleet, exact_report = exact_path()
    exact_time = time.perf_counter() - start
    start = time.perf_counter()
    outcome, tail_report = triage_path()
    triage_time = time.perf_counter() - start

    # Correctness first: the flagged devices' report rows must equal
    # the exact campaign's byte for byte, and every truly risky device
    # (exact onset inside the mission window) must be in the tail.
    flagged_ids = {d.device_id for d in outcome.flagged}
    exact_rows = [
        row for row in exact_report.device_rows
        if row["device"] in flagged_ids
    ]
    assert (
        json.dumps(exact_rows, sort_keys=True)
        == json.dumps(tail_report.device_rows, sort_keys=True)
    ), "triage tail rows diverged from the exact campaign"

    risky = [
        spec for spec in exact_fleet
        if spec.onset_years <= CONFIG.mission_years
    ]
    caught = [s for s in risky if s.device_id in flagged_ids]
    recall = len(caught) / len(risky) if risky else 1.0
    speedup = exact_time / triage_time

    rows = [
        f"ALU surrogate triage: {DEVICES}-device fleet, "
        f"{len(dataset.rows)}-row sweep"
        + (" [smoke]" if SMOKE else ""),
        f"training: sweep+fit+calibrate in {train_time:.1f}s, held-out "
        f"recall {validation.recall:.3f} (floor {RECALL_FLOOR})",
        "path              | wall (s) | devices/s | speedup",
    ]
    for path_name, label, wall in (
        ("exact_packed", "exact packed", exact_time),
        ("surrogate_triage", "surrogate triage", triage_time),
    ):
        rows.append(
            f"{label:17s} | {wall:8.3f} | {DEVICES / wall:9.1f} "
            f"| {exact_time / wall:6.2f}x"
        )
        recorder.sample(
            "surrogate_triage", "wall_time", wall, "seconds",
            path=path_name, devices=DEVICES, seed=CONFIG.seed,
            timing=True,
        )
        recorder.sample(
            "surrogate_triage", "devices_per_second", DEVICES / wall,
            "devices/s", path=path_name, devices=DEVICES,
            seed=CONFIG.seed, timing=True, bigger_is_better=True,
        )
    rows += [
        f"cleared {len(outcome.cleared)} / flagged {len(outcome.flagged)} "
        f"of {DEVICES} (threshold {outcome.threshold:.2f}y)",
        f"fleet risky-tail recall: {recall:.3f} "
        f"({len(caught)}/{len(risky)} risky devices flagged)",
        "tail rows byte-identical to exact campaign: yes",
    ]
    recorder.sample(
        "surrogate_triage", "speedup_vs_exact", speedup, "ratio",
        devices=DEVICES, seed=CONFIG.seed, timing=True,
        bigger_is_better=True,
    )
    recorder.sample(
        "surrogate_triage", "risky_tail_recall", recall, "ratio",
        devices=DEVICES, seed=CONFIG.seed, bigger_is_better=True,
    )
    recorder.sample(
        "surrogate_triage", "holdout_recall", validation.recall,
        "ratio", sweep_rows=len(dataset.rows), seed=SURROGATE.seed,
        bigger_is_better=True,
    )
    recorder.sample(
        "surrogate_triage", "devices_cleared", len(outcome.cleared),
        "devices", devices=DEVICES, seed=CONFIG.seed,
        bigger_is_better=True,
    )
    recorder.sample(
        "surrogate_triage", "devices_flagged", len(outcome.flagged),
        "devices", devices=DEVICES, seed=CONFIG.seed,
    )
    recorder.sample(
        "surrogate_triage", "sweep_rows", len(dataset.rows), "rows",
        seed=SURROGATE.seed, bigger_is_better=True,
    )
    recorder.table("surrogate_triage", "\n".join(rows))

    assert recall >= RECALL_FLOOR, (
        f"fleet risky-tail recall {recall:.3f} below {RECALL_FLOOR}: "
        f"a cleared device would have violated in the field"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"surrogate triage only {speedup:.2f}x the exact packed path "
        f"(floor {MIN_SPEEDUP}x)"
    )

    outcome = benchmark(triage_path)
    assert len(outcome[0].devices) == DEVICES
