"""Scaling — incremental + parallel Error Lifting vs the seed engine.

The seed lifter rebuilt a fresh SAT solver for every unroll depth of
every cover query: proving a pair unrealizable at depth D re-encoded
1 + 2 + ... + D frames and re-derived every conflict from scratch.  The
incremental engine keeps one solver per query, adds one frame of CNF
per depth, and asserts the per-depth cover objective through assumption
literals, so learned clauses and the VSIDS ordering survive across
depths.  Endpoint pairs are additionally sharded across ``fork``
workers (one per CPU) with deterministic result ordering.

This benchmark runs the ALU workflow's lifting phase under all three
engines on a hard configuration (mitigation variants, deep bound),
checks the reports are identical, and records the wall-time/conflict
table.  Acceptance: parallel + incremental is at least 2x faster than
the seed-style serial engine.
"""

import os
import time

from repro.core.config import ErrorLiftingConfig
from repro.lifting.lifter import ErrorLifter

#: Deep bound + mitigation variants: the regime where rebuild-per-depth
#: hurts most (UR proofs re-encode a quadratic number of frames).
BMC_DEPTH = 10
REPEATS = 3


def _lift(unit, incremental, workers):
    config = ErrorLiftingConfig(
        enable_mitigation=True,
        bmc_depth=BMC_DEPTH,
        incremental_bmc=incremental,
        workers=workers,
    )
    lifter = ErrorLifter(unit.netlist, config, unit.mapper)
    return lifter.lift(unit.sta_result.report)


def _timed(unit, incremental, workers):
    """Best-of-N wall time plus the report of the last run."""
    best = float("inf")
    report = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = _lift(unit, incremental, workers)
        best = min(best, time.perf_counter() - start)
    return best, report


def _fingerprint(report):
    """Everything a run produces, for bit-identical comparison."""
    return [
        (
            pair.start,
            pair.end,
            pair.outcome.value,
            [
                (
                    v.model.label,
                    v.status.value,
                    v.test_case.name if v.test_case else None,
                    len(v.test_case.instructions) if v.test_case else 0,
                )
                for v in pair.variants
            ],
        )
        for pair in report.pairs
    ]


def test_lifting_engine_scaling(ctx, benchmark, recorder):
    unit = ctx.alu
    _lift(unit, True, 1)  # warm the pipeline + compile/levelize caches

    serial_time, serial_report = _timed(unit, incremental=False, workers=1)
    incr_time, incr_report = _timed(unit, incremental=True, workers=1)
    par_time, par_report = _timed(unit, incremental=True, workers=0)

    # All three engines must produce bit-identical reports.
    baseline = _fingerprint(serial_report)
    assert _fingerprint(incr_report) == baseline
    assert _fingerprint(par_report) == baseline

    def conflicts(report):
        return sum(v.conflicts for p in report.pairs for v in p.variants)

    rows = [
        f"ALU workflow: {len(serial_report.pairs)} endpoint pairs, "
        f"mitigation on, depth {BMC_DEPTH}, {os.cpu_count()} CPU(s), "
        f"best of {REPEATS}",
        "engine               | wall (s) | conflicts | speedup",
    ]
    for label, wall, report in (
        ("seed serial (fresh)", serial_time, serial_report),
        ("incremental", incr_time, incr_report),
        ("parallel+incremental", par_time, par_report),
    ):
        rows.append(
            f"{label:20s} | {wall:8.3f} | {conflicts(report):9d} | "
            f"{serial_time / wall:6.2f}x"
        )
        engine = label.replace(" ", "_").replace("(", "").replace(")", "")
        recorder.sample(
            "lifting_scaling", "wall_time", wall, "seconds",
            engine=engine, depth=BMC_DEPTH, repeats=REPEATS, timing=True,
        )
        recorder.sample(
            "lifting_scaling", "solver_conflicts", conflicts(report),
            "conflicts", engine=engine, depth=BMC_DEPTH,
        )
    recorder.sample(
        "lifting_scaling", "speedup", serial_time / par_time, "ratio",
        engine="parallel+incremental", depth=BMC_DEPTH,
        timing=True, bigger_is_better=True,
    )
    recorder.sample(
        "lifting_scaling", "endpoint_pairs", len(serial_report.pairs),
        "pairs", depth=BMC_DEPTH, bigger_is_better=True,
    )
    recorder.table("lifting_scaling", "\n".join(rows))

    # Acceptance: the new engine at least halves lifting wall time.
    assert serial_time / par_time >= 2.0, (
        f"parallel+incremental only {serial_time / par_time:.2f}x faster"
    )

    result = benchmark(_lift, unit, True, 1)
    assert result.pairs
