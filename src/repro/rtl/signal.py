"""Bit-level RTL construction DSL.

The paper's hardware (the CV32E40P ALU and the FPnew FPU) is written in
SystemVerilog and synthesized by commercial tools.  This module is our
substitute for that front end: designs are described as Python
expressions over :class:`Signal` objects, producing a hash-consed DAG of
single-bit operations that :mod:`repro.rtl.synth` maps onto the vega28
cell library.

Everything is built from five bit operators — AND, OR, XOR, NOT, MUX —
plus constants, inputs, and register outputs.  Word-level operations
(addition, shifts, comparisons, multiplication) are constructed
structurally the same way a synthesizer would elaborate them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union


class RtlError(Exception):
    """Raised for width mismatches and malformed module structure."""


class Bit:
    """One node of the bit-level DAG.

    ``op`` is one of ``const``, ``in``, ``reg``, ``and``, ``or``,
    ``xor``, ``not``, ``mux``.  ``args`` holds operand bits; ``tag``
    disambiguates leaves (constant value, or ``(name, index)``).

    Bits are interned by their :class:`Module`, so identity comparison
    is structural equality; the class deliberately keeps the default
    identity hash to avoid O(depth) recursive hashing on deep DAGs.
    """

    __slots__ = ("op", "args", "tag", "uid")

    def __init__(
        self,
        op: str,
        args: Tuple["Bit", ...] = (),
        tag: object = None,
        uid: int = 0,
    ):
        self.op = op
        self.args = args
        self.tag = tag
        self.uid = uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op in ("in", "reg"):
            return f"Bit({self.op}:{self.tag[0]}[{self.tag[1]}])"
        if self.op == "const":
            return f"Bit({self.tag})"
        return f"Bit({self.op}/{len(self.args)})"


class Module:
    """An RTL module under construction.

    Inputs, registers, and outputs are declared through methods; all
    combinational structure is built by :class:`Signal` operators.  Bits
    are interned so identical subexpressions share one node (structural
    CSE, mirroring what logic synthesis would do).
    """

    def __init__(self, name: str):
        self.name = name
        self.inputs: Dict[str, "Signal"] = {}
        self.outputs: Dict[str, "Signal"] = {}
        self.registers: Dict[str, "Register"] = {}
        self._intern: Dict[Tuple, Bit] = {}
        self._next_uid = 0

    # -- bit factory ---------------------------------------------------
    def _mk(self, op: str, args: Tuple[Bit, ...] = (), tag: object = None) -> Bit:
        # Children are interned before parents, so their ids identify
        # them structurally; keying on ids keeps interning O(1) per node.
        key = (op, tuple(id(a) for a in args), tag)
        bit = self._intern.get(key)
        if bit is None:
            bit = Bit(op, args, tag, uid=self._next_uid)
            self._next_uid += 1
            self._intern[key] = bit
        return bit

    def const_bit(self, value: int) -> Bit:
        return self._mk("const", tag=value & 1)

    # -- constant folding + simplification -----------------------------
    def b_not(self, a: Bit) -> Bit:
        if a.op == "const":
            return self.const_bit(1 - a.tag)
        if a.op == "not":
            return a.args[0]
        return self._mk("not", (a,))

    def b_and(self, a: Bit, b: Bit) -> Bit:
        if a is b:
            return a
        if a.op == "const":
            return b if a.tag else self.const_bit(0)
        if b.op == "const":
            return a if b.tag else self.const_bit(0)
        if a.op == "not" and a.args[0] is b:
            return self.const_bit(0)
        if b.op == "not" and b.args[0] is a:
            return self.const_bit(0)
        if a.uid > b.uid:  # canonical (deterministic) operand order
            a, b = b, a
        return self._mk("and", (a, b))

    def b_or(self, a: Bit, b: Bit) -> Bit:
        if a is b:
            return a
        if a.op == "const":
            return self.const_bit(1) if a.tag else b
        if b.op == "const":
            return self.const_bit(1) if b.tag else a
        if a.op == "not" and a.args[0] is b:
            return self.const_bit(1)
        if b.op == "not" and b.args[0] is a:
            return self.const_bit(1)
        if a.uid > b.uid:
            a, b = b, a
        return self._mk("or", (a, b))

    def b_xor(self, a: Bit, b: Bit) -> Bit:
        if a is b:
            return self.const_bit(0)
        if a.op == "const":
            return b if not a.tag else self.b_not(b)
        if b.op == "const":
            return a if not b.tag else self.b_not(a)
        if a.uid > b.uid:
            a, b = b, a
        return self._mk("xor", (a, b))

    def b_mux(self, sel: Bit, a: Bit, b: Bit) -> Bit:
        """``b if sel else a`` (matches the MUX2 cell's S semantics)."""
        if a is b:
            return a
        if sel.op == "const":
            return b if sel.tag else a
        if a.op == "const" and b.op == "const":
            return sel if b.tag else self.b_not(sel)
        if a.op == "const":
            if a.tag:  # mux(s, 1, b) = ~s | b
                return self.b_or(self.b_not(sel), b)
            return self.b_and(sel, b)  # mux(s, 0, b) = s & b
        if b.op == "const":
            if b.tag:  # mux(s, a, 1) = s | a
                return self.b_or(sel, a)
            return self.b_and(self.b_not(sel), a)  # mux(s, a, 0) = ~s & a
        return self._mk("mux", (a, b, sel))

    # -- declarations ---------------------------------------------------
    def input(self, name: str, width: int = 1) -> "Signal":
        if name in self.inputs:
            raise RtlError(f"input {name!r} already declared")
        bits = tuple(self._mk("in", tag=(name, i)) for i in range(width))
        sig = Signal(self, bits)
        self.inputs[name] = sig
        return sig

    def register(self, name: str, width: int = 1, init: int = 0) -> "Register":
        if name in self.registers:
            raise RtlError(f"register {name!r} already declared")
        reg = Register(self, name, width, init)
        self.registers[name] = reg
        return reg

    def output(self, name: str, sig: "Signal") -> None:
        if name in self.outputs:
            raise RtlError(f"output {name!r} already declared")
        self.outputs[name] = sig

    # -- constants -------------------------------------------------------
    def const(self, value: int, width: int) -> "Signal":
        if value < 0:
            value &= (1 << width) - 1
        bits = tuple(self.const_bit((value >> i) & 1) for i in range(width))
        return Signal(self, bits)

    def finalize(self) -> None:
        """Validate that every register has a next-state expression."""
        for reg in self.registers.values():
            if reg.next is None:
                raise RtlError(f"register {reg.name!r} has no next-state")


class Register:
    """A named bank of DFFs.  ``.q`` reads it; assign ``.next`` to drive it."""

    def __init__(self, module: Module, name: str, width: int, init: int):
        self.module = module
        self.name = name
        self.width = width
        self.init = init & ((1 << width) - 1)
        bits = tuple(module._mk("reg", tag=(name, i)) for i in range(width))
        self.q = Signal(module, bits)
        self._next: Optional[Signal] = None

    @property
    def next(self) -> Optional["Signal"]:
        return self._next

    @next.setter
    def next(self, sig: "Signal") -> None:
        if sig.width != self.width:
            raise RtlError(
                f"register {self.name!r} is {self.width} bits; "
                f"next-state is {sig.width}"
            )
        self._next = sig


def _coerce(module: Module, other: Union["Signal", int], width: int) -> "Signal":
    if isinstance(other, Signal):
        return other
    return module.const(other, width)


class Signal:
    """An immutable vector of bits (LSB first) with word-level operators."""

    __slots__ = ("module", "bits")

    def __init__(self, module: Module, bits: Tuple[Bit, ...]):
        self.module = module
        self.bits = bits

    @property
    def width(self) -> int:
        return len(self.bits)

    # -- slicing / shaping ------------------------------------------------
    def __getitem__(self, idx) -> "Signal":
        if isinstance(idx, int):
            return Signal(self.module, (self.bits[idx],))
        return Signal(self.module, tuple(self.bits[idx]))

    def bit(self, i: int) -> Bit:
        return self.bits[i]

    def concat(self, *others: "Signal") -> "Signal":
        """Concatenate self (low) with others (progressively higher)."""
        bits = list(self.bits)
        for other in others:
            bits.extend(other.bits)
        return Signal(self.module, tuple(bits))

    def zext(self, width: int) -> "Signal":
        if width < self.width:
            raise RtlError("zext target narrower than signal")
        pad = tuple(
            self.module.const_bit(0) for _ in range(width - self.width)
        )
        return Signal(self.module, self.bits + pad)

    def sext(self, width: int) -> "Signal":
        if width < self.width:
            raise RtlError("sext target narrower than signal")
        pad = tuple(self.bits[-1] for _ in range(width - self.width))
        return Signal(self.module, self.bits + pad)

    def repeat(self, count: int) -> "Signal":
        if self.width != 1:
            raise RtlError("repeat requires a 1-bit signal")
        return Signal(self.module, self.bits * count)

    def _check(self, other: "Signal") -> None:
        if self.width != other.width:
            raise RtlError(
                f"width mismatch: {self.width} vs {other.width}"
            )

    # -- bitwise ----------------------------------------------------------
    def __and__(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        self._check(other)
        m = self.module
        return Signal(
            m, tuple(m.b_and(a, b) for a, b in zip(self.bits, other.bits))
        )

    def __or__(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        self._check(other)
        m = self.module
        return Signal(
            m, tuple(m.b_or(a, b) for a, b in zip(self.bits, other.bits))
        )

    def __xor__(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        self._check(other)
        m = self.module
        return Signal(
            m, tuple(m.b_xor(a, b) for a, b in zip(self.bits, other.bits))
        )

    def __invert__(self) -> "Signal":
        m = self.module
        return Signal(m, tuple(m.b_not(a) for a in self.bits))

    # -- reductions ---------------------------------------------------------
    def _reduce(self, fn) -> "Signal":
        acc = self.bits[0]
        for b in self.bits[1:]:
            acc = fn(acc, b)
        return Signal(self.module, (acc,))

    def any(self) -> "Signal":
        """OR-reduce: 1 if any bit is set."""
        return self._reduce(self.module.b_or)

    def all(self) -> "Signal":
        """AND-reduce: 1 if every bit is set."""
        return self._reduce(self.module.b_and)

    def parity(self) -> "Signal":
        """XOR-reduce."""
        return self._reduce(self.module.b_xor)

    # -- arithmetic -----------------------------------------------------
    def _adder(self, other: "Signal", carry_in: Bit) -> Tuple[Tuple[Bit, ...], Bit]:
        """Ripple-carry addition; returns (sum bits, carry out)."""
        m = self.module
        carry = carry_in
        out: List[Bit] = []
        for a, b in zip(self.bits, other.bits):
            axb = m.b_xor(a, b)
            out.append(m.b_xor(axb, carry))
            carry = m.b_or(m.b_and(a, b), m.b_and(axb, carry))
        return tuple(out), carry

    def add(self, other, carry_in: int = 0) -> "Signal":
        other = _coerce(self.module, other, self.width)
        self._check(other)
        cin = self.module.const_bit(carry_in)
        bits, _ = self._adder(other, cin)
        return Signal(self.module, bits)

    def add_with_carry(self, other, carry_in: int = 0) -> Tuple["Signal", "Signal"]:
        other = _coerce(self.module, other, self.width)
        self._check(other)
        cin = self.module.const_bit(carry_in)
        bits, cout = self._adder(other, cin)
        return Signal(self.module, bits), Signal(self.module, (cout,))

    def __add__(self, other) -> "Signal":
        return self.add(other)

    def __sub__(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        self._check(other)
        bits, _ = self._adder(~other, self.module.const_bit(1))
        return Signal(self.module, bits)

    def sub_with_borrow(self, other) -> Tuple["Signal", "Signal"]:
        """Returns (a - b, borrow) where borrow=1 iff a < b (unsigned)."""
        other = _coerce(self.module, other, self.width)
        self._check(other)
        bits, cout = self._adder(~other, self.module.const_bit(1))
        borrow = self.module.b_not(cout)
        return Signal(self.module, bits), Signal(self.module, (borrow,))

    def neg(self) -> "Signal":
        return self.module.const(0, self.width) - self

    def __mul__(self, other) -> "Signal":
        """Unsigned array multiplier; result has 2x width."""
        other = _coerce(self.module, other, self.width)
        self._check(other)
        m = self.module
        total = m.const(0, 2 * self.width)
        for i, b in enumerate(other.bits):
            pp = (self & Signal(m, (b,)).repeat(self.width)).zext(2 * self.width)
            shifted = Signal(
                m,
                tuple(m.const_bit(0) for _ in range(i)) + pp.bits[: 2 * self.width - i],
            )
            total = total + shifted
        return total

    # -- comparisons ------------------------------------------------------
    def eq(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        self._check(other)
        return (~(self ^ other)).all()

    def ne(self, other) -> "Signal":
        eq = self.eq(other)
        return ~eq

    def ult(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        _, borrow = self.sub_with_borrow(other)
        return borrow

    def ule(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        return ~other.ult(self)

    def slt(self, other) -> "Signal":
        """Signed less-than (two's complement)."""
        other = _coerce(self.module, other, self.width)
        self._check(other)
        diff, borrow = self.sub_with_borrow(other)
        sa, sb = self[-1], other[-1]
        # Signs differ -> a < b iff a negative; else use unsigned borrow.
        differs = sa ^ sb
        m = self.module
        return Signal(
            m, (m.b_mux(differs.bits[0], borrow.bits[0], sa.bits[0]),)
        )

    def sle(self, other) -> "Signal":
        other = _coerce(self.module, other, self.width)
        return ~other.slt(self)

    # -- shifts -----------------------------------------------------------
    def shl_const(self, amount: int) -> "Signal":
        m = self.module
        amount = min(amount, self.width)
        bits = (
            tuple(m.const_bit(0) for _ in range(amount))
            + self.bits[: self.width - amount]
        )
        return Signal(m, bits)

    def shr_const(self, amount: int, arith: bool = False) -> "Signal":
        m = self.module
        amount = min(amount, self.width)
        fill = self.bits[-1] if arith else m.const_bit(0)
        bits = self.bits[amount:] + tuple(fill for _ in range(amount))
        return Signal(m, bits)

    def _barrel(self, shamt: "Signal", stage_fn) -> "Signal":
        # Every shamt bit gets a stage: the per-stage constant shift
        # clamps at the signal width, so amounts >= width correctly
        # saturate to all-zero (or all-sign for arithmetic shifts)
        # instead of wrapping.
        result = self
        for stage, sel_bit in enumerate(shamt.bits):
            shifted = stage_fn(result, min(1 << stage, self.width))
            result = mux(Signal(self.module, (sel_bit,)), result, shifted)
        return result

    def shl(self, shamt: "Signal") -> "Signal":
        """Logical left shift by a signal amount (barrel shifter)."""
        return self._barrel(shamt, lambda s, k: s.shl_const(k))

    def shr(self, shamt: "Signal") -> "Signal":
        """Logical right shift by a signal amount."""
        return self._barrel(shamt, lambda s, k: s.shr_const(k, arith=False))

    def sra(self, shamt: "Signal") -> "Signal":
        """Arithmetic right shift by a signal amount."""
        return self._barrel(shamt, lambda s, k: s.shr_const(k, arith=True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.width}b)"


def mux(sel: Signal, a: Signal, b: Signal) -> Signal:
    """Word-level 2:1 mux: ``b`` when ``sel`` else ``a``."""
    if sel.width != 1:
        raise RtlError("mux select must be 1 bit")
    if a.width != b.width:
        raise RtlError("mux arm width mismatch")
    m = a.module
    s = sel.bits[0]
    return Signal(m, tuple(m.b_mux(s, x, y) for x, y in zip(a.bits, b.bits)))


def mux_by_index(sel: Signal, arms: Sequence[Signal]) -> Signal:
    """N-way mux: selects ``arms[sel]``; out-of-range selects arm 0."""
    if not arms:
        raise RtlError("mux_by_index needs at least one arm")
    result = arms[0]
    for index, arm in enumerate(arms[1:], start=1):
        result = mux(sel.eq(index), result, arm)
    return result


def leading_zero_count(sig: Signal) -> Signal:
    """Count of leading zeros (from MSB); width = ceil(log2(w))+1 bits.

    Built as a priority encoder: positionally the first 1 from the top
    selects its index.  Used by the FPU normalizer.
    """
    m = sig.module
    w = sig.width
    out_width = max(1, (w).bit_length())
    result = m.const(w, out_width)  # all-zero input -> count == width
    seen = m.const(0, 1)
    for i in range(w - 1, -1, -1):
        bit = sig[i]
        is_first = bit & ~seen
        count_here = m.const(w - 1 - i, out_width)
        result = mux(is_first, result, count_here)
        seen = seen | bit
    return result
