"""Dispatch policies: belief snapshot in, deterministic schedule out.

A policy answers one question per planning tick: *for each device that
is asking for work, which arm should it run next?*  All policies are
pure functions of ``(belief, arm catalogue, requests, tick, seed)`` —
they never mutate the belief and never carry RNG state between ticks
(Thompson draws come from named streams keyed by ``(seed, tick,
device)``), which is what makes a live run and its replay produce the
same schedules byte for byte.

Three policies ship:

* ``sequential`` — the static baseline: every device walks the arm
  catalogue in fixed order, exactly like a screening flow that runs the
  same test list on every part.  No belief is consulted.
* ``greedy`` — cost-aware exploitation: dispatch the arm with the
  highest posterior-mean detection probability per cycle.
* ``thompson`` — the bandit: sample a detection probability from each
  arm's blended Beta posterior and dispatch the best draw per cycle.
  Sampling keeps exploring low-evidence arms while fleet-level evidence
  steers new devices toward the arms that already caught faults
  elsewhere.

:meth:`Policy.plan` ranks arms with numpy over the belief's array
mirror — candidate masks and scores for a whole batch at once.  The
scalar implementation survives as :meth:`Policy.plan_reference`; both
produce identical schedules (the arrays copy the dict floats verbatim
and the vectorized expressions apply the same IEEE operations in the
same order, and Thompson still draws its betavariates one candidate at
a time from the same named stream), which the equivalence tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.rng import stream_rng
from .belief import ArmSpec, FleetBelief


@dataclass(frozen=True)
class PlanRequest:
    """One device asking the service for its next test."""

    device_id: str
    device_index: int


@dataclass(frozen=True)
class Dispatch:
    """One planned (device, arm) assignment."""

    device_id: str
    device_index: int
    arm: str
    kind: str
    class_label: str
    cost_cycles: int

    def as_record(self) -> dict:
        return {
            "device": self.device_id,
            "arm": self.arm,
            "kind": self.kind,
            "class": self.class_label,
            "cost_cycles": self.cost_cycles,
        }


@dataclass
class Schedule:
    """A tick's worth of dispatches, in deterministic device order."""

    tick: int
    policy: str
    dispatches: List[Dispatch] = field(default_factory=list)
    #: Devices that asked for work but have nothing left to run.
    retired: List[str] = field(default_factory=list)


class Policy:
    """Base class; subclasses implement :meth:`choose`."""

    name = "policy"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def choose(
        self,
        belief: FleetBelief,
        candidates: Sequence[ArmSpec],
        request: PlanRequest,
        tick: int,
    ) -> ArmSpec:
        raise NotImplementedError

    def plan(
        self,
        belief: FleetBelief,
        arms: Sequence[ArmSpec],
        requests: Sequence[PlanRequest],
        tick: int,
    ) -> Schedule:
        """Assign one arm to every requesting device (or retire it).

        Requests are processed in device-index order so the schedule —
        and everything downstream of it — is independent of arrival
        order inside the tick.  Candidate masks and arm ranking run
        vectorized over the belief's array mirror; the schedule is
        identical to :meth:`plan_reference`.
        """
        schedule = Schedule(tick=tick, policy=self.name)
        ordered = sorted(requests, key=lambda r: r.device_index)
        if not ordered:
            return schedule
        mirror = belief.arrays(arms)
        rows = np.array(
            [mirror.row[request.device_id] for request in ordered],
            dtype=np.intp,
        )
        valid = belief.valid_matrix(arms, rows)
        columns = self._choose_columns(
            belief, arms, ordered, rows, valid, tick
        )
        if isinstance(columns, np.ndarray):
            columns = columns.tolist()
        catalogue = mirror.arms
        dispatches = schedule.dispatches
        retired = schedule.retired
        for position, request in enumerate(ordered):
            column = columns[position]
            if column < 0:
                retired.append(request.device_id)
                continue
            arm = catalogue[column]
            dispatches.append(
                Dispatch(
                    device_id=request.device_id,
                    device_index=request.device_index,
                    arm=arm.name,
                    kind=arm.kind,
                    class_label=arm.class_label,
                    cost_cycles=arm.cost_cycles,
                )
            )
        return schedule

    def _choose_columns(
        self,
        belief: FleetBelief,
        arms: Sequence[ArmSpec],
        ordered: Sequence[PlanRequest],
        rows: np.ndarray,
        valid: np.ndarray,
        tick: int,
    ) -> Sequence[int]:
        """Catalogue column per request (-1: retire).  Base fallback
        funnels each row's candidate set through :meth:`choose`, so
        custom policies stay correct without a vectorized ranking."""
        mirror = belief.arrays(arms)
        columns: List[int] = []
        for position, request in enumerate(ordered):
            candidates = [
                mirror.arms[col] for col in np.flatnonzero(valid[position])
            ]
            if not candidates:
                columns.append(-1)
                continue
            arm = self.choose(belief, candidates, request, tick)
            columns.append(mirror.arm_col[arm.name])
        return columns

    def plan_reference(
        self,
        belief: FleetBelief,
        arms: Sequence[ArmSpec],
        requests: Sequence[PlanRequest],
        tick: int,
    ) -> Schedule:
        """The scalar planning path (dict lookups, python loops).

        Kept as the equivalence oracle for :meth:`plan` and for A/B
        benchmarking — byte-identical schedules, no numpy involved.
        """
        schedule = Schedule(tick=tick, policy=self.name)
        for request in sorted(requests, key=lambda r: r.device_index):
            candidates = belief.candidates(request.device_id, arms)
            if not candidates:
                schedule.retired.append(request.device_id)
                continue
            arm = self.choose(belief, candidates, request, tick)
            schedule.dispatches.append(
                Dispatch(
                    device_id=request.device_id,
                    device_index=request.device_index,
                    arm=arm.name,
                    kind=arm.kind,
                    class_label=arm.class_label,
                    cost_cycles=arm.cost_cycles,
                )
            )
        return schedule


class SequentialPolicy(Policy):
    """Static catalogue-order baseline (no belief consulted)."""

    name = "sequential"

    def choose(self, belief, candidates, request, tick):
        return min(candidates, key=lambda arm: arm.index)

    def _choose_columns(self, belief, arms, ordered, rows, valid, tick):
        # Catalogue columns are already sorted by arm index, so the
        # first valid column IS min-by-index.
        columns = valid.argmax(axis=1)
        columns[~valid.any(axis=1)] = -1
        return columns


class GreedyPolicy(Policy):
    """Highest posterior-mean detection probability per cycle."""

    name = "greedy"

    def choose(self, belief, candidates, request, tick):
        return min(
            candidates,
            key=lambda arm: (
                -belief.mean(request.device_id, arm.class_label)
                / arm.cost_cycles,
                arm.index,
            ),
        )

    def _choose_columns(self, belief, arms, ordered, rows, valid, tick):
        mirror = belief.arrays(arms)
        ab = belief.blended_matrix(arms, rows)
        mean = ab[..., 0] / (ab[..., 0] + ab[..., 1])
        # Same float ops as the scalar path: negate the per-class mean,
        # divide by integer cost.  ``argmin`` takes the first minimum,
        # matching the scalar (score, arm.index) tie-break because the
        # columns are in arm-index order.
        score = np.negative(mean[:, mirror.arm_class]) / mirror.cost[None, :]
        score[~valid] = np.inf
        columns = score.argmin(axis=1)
        columns[~valid.any(axis=1)] = -1
        return columns


class ThompsonPolicy(Policy):
    """Thompson sampling over the blended Beta posteriors.

    The sampling stream is keyed by ``(policy seed, tick, device
    index)`` and draws one betavariate per candidate in catalogue
    order, so the choice is a pure function of the belief snapshot —
    replay re-derives the identical stream instead of persisting RNG
    state in checkpoints.
    """

    name = "thompson"

    def choose(self, belief, candidates, request, tick):
        rng = stream_rng(
            "scheduler.thompson", self.seed, tick, request.device_index
        )
        best: Optional[ArmSpec] = None
        best_value = float("-inf")
        for arm in sorted(candidates, key=lambda a: a.index):
            alpha, beta = belief.blended(request.device_id, arm.class_label)
            draw = rng.betavariate(alpha, beta)
            value = draw / arm.cost_cycles
            if value > best_value:
                best = arm
                best_value = value
        return best

    def _choose_columns(self, belief, arms, ordered, rows, valid, tick):
        # The blended posteriors come from the array mirror, but the
        # betavariate draws stay a python loop per candidate in
        # catalogue order — the stream consumed per (tick, device) is
        # byte-identical to the scalar path's.  ``tolist`` hands the
        # loop plain python floats (exact same values) so the hot part
        # pays list indexing, not numpy scalar extraction.
        mirror = belief.arrays(arms)
        ab_rows = belief.blended_matrix(arms, rows).tolist()
        valid_rows = valid.tolist()
        arm_class = mirror.arm_class.tolist()
        costs = [arm.cost_cycles for arm in mirror.arms]
        columns: List[int] = []
        for position, request in enumerate(ordered):
            row_valid = valid_rows[position]
            row_ab = ab_rows[position]
            rng = None
            best = -1
            best_value = float("-inf")
            for col, ok in enumerate(row_valid):
                if not ok:
                    continue
                if rng is None:
                    rng = stream_rng(
                        "scheduler.thompson",
                        self.seed,
                        tick,
                        request.device_index,
                    )
                alpha, beta = row_ab[arm_class[col]]
                draw = rng.betavariate(alpha, beta)
                value = draw / costs[col]
                if value > best_value:
                    best = col
                    best_value = value
            columns.append(best)
        return columns


POLICIES: Dict[str, Callable[[int], Policy]] = {
    "sequential": SequentialPolicy,
    "round_robin": SequentialPolicy,  # alias: static-order baseline
    "greedy": GreedyPolicy,
    "thompson": ThompsonPolicy,
}


def make_policy(name: str, seed: int = 0) -> Policy:
    """Instantiate a registered policy; raises ValueError on unknowns."""
    try:
        factory = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown policy {name!r} (known: {known})"
        ) from None
    return factory(seed)
