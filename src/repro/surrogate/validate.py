"""Held-out validation and triage-threshold calibration.

The surrogate's one unforgivable failure mode is clearing a device
that would have violated in the field: a cleared device never reaches
the exact pipeline again.  Validation therefore centres on *risky-tail
recall* — the fraction of held-out devices with a true onset inside
the risky horizon that the calibrated threshold would flag — and
**fails closed**: :func:`validate_model` raises
:class:`SurrogateValidationError` below the recall floor, so an
under-trained model can never be handed to triage.

Onset MAE and the slack rank correlation (Spearman via double argsort)
are reported alongside as regression-quality diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np


class SurrogateValidationError(RuntimeError):
    """Raised when a trained surrogate misses the recall floor."""


@dataclass
class ValidationReport:
    """Held-out quality of one trained surrogate."""

    rows: int
    risky_rows: int
    onset_mae_years: float
    slack_spearman: float
    recall: float
    flagged_fraction: float
    threshold: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rows": self.rows,
            "risky_rows": self.risky_rows,
            "onset_mae_years": self.onset_mae_years,
            "slack_spearman": self.slack_spearman,
            "recall": self.recall,
            "flagged_fraction": self.flagged_fraction,
            "threshold": self.threshold,
        }


def _matrices(rows: Sequence[Dict[str, Any]]):
    X = np.asarray([row["features"] for row in rows], dtype=np.float64)
    onset = np.asarray([row["onset_years"] for row in rows], dtype=np.float64)
    slack = np.asarray([row["slack_ns"] for row in rows], dtype=np.float64)
    return X, onset, slack


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (double-argsort ranks)."""
    if len(a) < 2:
        return 1.0
    rank_a = np.argsort(np.argsort(a)).astype(np.float64)
    rank_b = np.argsort(np.argsort(b)).astype(np.float64)
    da = rank_a - rank_a.mean()
    db = rank_b - rank_b.mean()
    denom = float(np.sqrt((da * da).sum() * (db * db).sum()))
    if denom == 0.0:
        return 1.0
    return float((da * db).sum() / denom)


def calibrate_threshold(
    model,
    train_rows: Sequence[Dict[str, Any]],
    risky_horizon: float = 10.0,
    recall_floor: float = 0.95,
    margin: float = 0.10,
) -> Dict[str, Any]:
    """Pick the flag threshold on the *training* rows.

    A device is flagged when its predicted onset falls at or below the
    threshold.  The threshold is the smallest predicted-onset value
    covering ``recall_floor`` of the training risky tail (true onset
    inside ``risky_horizon``), inflated by ``margin`` — the safety
    margin buys recall on unseen devices at the price of a slightly
    fatter flagged tail, which the exact pipeline re-verifies anyway.
    """
    X, onset, _ = _matrices(train_rows)
    predicted = model.predict_onset(X)
    risky = predicted[onset <= risky_horizon]
    if len(risky) == 0:
        # Nothing risky in training: flag the horizon itself.
        base = risky_horizon
    else:
        ranked = np.sort(risky)
        cover = max(1, int(np.ceil(recall_floor * len(ranked))))
        base = float(ranked[cover - 1])
    return {
        "threshold": base * (1.0 + margin),
        "risky_horizon": risky_horizon,
        "recall_floor": recall_floor,
        "margin": margin,
    }


def validate_model(
    model,
    holdout_rows: Sequence[Dict[str, Any]],
    risky_horizon: float = 10.0,
    recall_floor: float = 0.95,
) -> ValidationReport:
    """Score the calibrated model on held-out rows; fail closed.

    Raises :class:`SurrogateValidationError` when the held-out risky
    tail's recall lands below ``recall_floor`` (or when the model was
    never calibrated).
    """
    threshold = model.threshold
    if threshold is None:
        raise SurrogateValidationError(
            "surrogate model carries no calibrated threshold; run "
            "calibrate_threshold (or train_surrogate) first"
        )
    if not holdout_rows:
        raise SurrogateValidationError(
            "no held-out rows to validate on; increase the dataset "
            "size or the holdout fraction"
        )
    X, onset, slack = _matrices(holdout_rows)
    predicted = model.predict(X)
    flagged = predicted[:, 0] <= threshold
    risky = onset <= risky_horizon
    recall = (
        float(flagged[risky].sum() / risky.sum()) if risky.any() else 1.0
    )
    report = ValidationReport(
        rows=len(holdout_rows),
        risky_rows=int(risky.sum()),
        onset_mae_years=float(np.abs(predicted[:, 0] - onset).mean()),
        slack_spearman=spearman(predicted[:, 1], slack),
        recall=recall,
        flagged_fraction=float(flagged.mean()),
        threshold=float(threshold),
    )
    if recall < recall_floor:
        raise SurrogateValidationError(
            f"held-out risky-tail recall {recall:.3f} is below the "
            f"floor {recall_floor:.3f} ({report.risky_rows} risky of "
            f"{report.rows} held-out rows); the surrogate must not be "
            f"used for triage — enlarge the training sweep or widen "
            f"the threshold margin"
        )
    return report
