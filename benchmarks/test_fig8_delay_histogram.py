"""Figure 8 — distribution of aging-induced delay increase per cell.

Paper shape: non-uniform, with a large bucket around ~6% (cells parked
near logic 0 during the workload), a bucket of mildly-aged cells
(~1.9%: parked near 1), and the rest spread between 2.2% and 5.7%.
"""

from repro.sta.aging_sta import delay_increase_histogram

BUCKETS = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.055, 0.10)


def test_fig8_delay_increase_histogram(ctx, benchmark, recorder):
    alu = ctx.alu
    fpu = ctx.fpu
    # Ensure STA state exists, then time the histogram extraction.
    alu_increase = alu.sta_result.delay_increase
    fpu_increase = fpu.sta_result.delay_increase

    def compute():
        return (
            delay_increase_histogram(alu_increase, BUCKETS),
            delay_increase_histogram(fpu_increase, BUCKETS),
        )

    alu_hist, fpu_hist = benchmark(compute)

    lines = ["bucket          ALU cells   FPU cells"]
    for (lo, hi, a_count), (_, _, f_count) in zip(alu_hist, fpu_hist):
        lines.append(
            f"{100*lo:4.1f}%-{100*hi:4.1f}%   {a_count:9d}   {f_count:9d}"
        )
    total_alu = sum(c for _, _, c in alu_hist)
    total_fpu = sum(c for _, _, c in fpu_hist)
    lines.append(f"total           {total_alu:9d}   {total_fpu:9d}")
    for unit, hist, total in (
        ("alu", alu_hist, total_alu), ("fpu", fpu_hist, total_fpu)
    ):
        recorder.sample(
            "fig8_delay_increase_histogram", "aged_cells", total, "cells",
            unit=unit, bigger_is_better=True,
        )
        recorder.sample(
            "fig8_delay_increase_histogram", "worst_bucket_share",
            100.0 * (hist[-1][2] + hist[-2][2]) / total, "percent",
            unit=unit, bucket=">=5.0%",
        )
    recorder.table("fig8_delay_increase_histogram", "\n".join(lines))

    assert total_alu == len(alu_increase)
    assert total_fpu == len(fpu_increase)
    # Non-uniform distribution: the top bucket (>=5.5%) holds a large
    # share, and a visible population ages mildly (< 3%).
    for hist, total in ((alu_hist, total_alu), (fpu_hist, total_fpu)):
        worst = hist[-1][2] + hist[-2][2]
        mild = sum(c for lo, _, c in hist if lo < 0.03)
        assert worst / total > 0.25
        assert mild / total > 0.02
    # Every cell ages somewhat but below the physical ceiling.
    assert all(0.0 <= v < 0.10 for v in alu_increase.values())
    assert all(0.0 <= v < 0.10 for v in fpu_increase.values())
