"""Embench-style workloads for the VR32 core.

The paper profiles and evaluates with embench-iot (§4, §5.1), using the
floating-point matrix-inversion kernel *minver* as the representative
workload for Aging Analysis.  These eleven kernels mirror that suite's
mix of integer, floating-point, branchy, and memory-bound behaviour,
ported to our ISA:

=============  ====  ==========================================
name           kind  kernel
=============  ====  ==========================================
minver         fp    3x3 matrix inversion (adjugate + Newton
                     reciprocal; our FPU has no divider)
crc32          int   bitwise CRC-32 over a 64-byte buffer
matmult        int   4x4 integer matrix multiply (shift-add mul)
matmult_hw     int   the same kernel via RV32M mul (MDU extension)
fir            fp    4-tap FIR filter over 32 samples
edn            fp    dot product + saxpy over 16-wide vectors
bitcount       int   population counts with three algorithms
primecount     int   sieve of Eratosthenes below 400
qsort          int   insertion sort of 32 pseudo-random words
st             fp    mean/variance statistics over 24 samples
nbody          fp    pairwise interaction accumulation (8 bodies)
=============  ====  ==========================================

Every program leaves a checksum in ``a0`` and halts with ``ecall``; the
expected values are independently recomputed by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List



@dataclass(frozen=True)
class Workload:
    """One benchmark program."""

    name: str
    kind: str  # "int" | "fp"
    description: str
    source: str


def _fp(value: float) -> int:
    """binary16 bit pattern of a Python float (exact for our constants)."""
    import numpy as np

    return int(np.float16(value).view(np.uint16))


# ---------------------------------------------------------------------------
# crc32 — bitwise CRC-32, polynomial 0xEDB88320, over bytes (7*i + 3) & 0xFF.
# ---------------------------------------------------------------------------
CRC32_SOURCE = """
.data
buf: .space 64
.text
    # Fill the buffer with (7*i + 3) & 0xff.
    la   t0, buf
    li   t1, 0          # i
    li   t2, 64
fill:
    slli t3, t1, 3      # 8i
    sub  t3, t3, t1     # 7i
    addi t3, t3, 3
    sb   t3, 0(t0)
    addi t0, t0, 1
    addi t1, t1, 1
    bne  t1, t2, fill

    li   a0, -1         # crc = 0xffffffff
    la   t0, buf
    li   t1, 0
byte_loop:
    lbu  t3, 0(t0)
    xor  a0, a0, t3
    li   t4, 8
bit_loop:
    andi t5, a0, 1
    srli a0, a0, 1
    beqz t5, no_poly
    li   t6, 0xEDB88320
    xor  a0, a0, t6
no_poly:
    addi t4, t4, -1
    bnez t4, bit_loop
    addi t0, t0, 1
    addi t1, t1, 1
    li   t2, 64
    bne  t1, t2, byte_loop
    not  a0, a0
    ecall
"""

# ---------------------------------------------------------------------------
# matmult — 4x4 integer matrix multiply via a shift-add multiply routine.
# ---------------------------------------------------------------------------
MATMULT_SOURCE = """
.data
A: .space 64
B: .space 64
C: .space 64
.text
    # A[i] = i + 1 ; B[i] = 2*i + 1   (i in 0..15, word arrays)
    la   t0, A
    la   t1, B
    li   t2, 0
init:
    addi t3, t2, 1
    sw   t3, 0(t0)
    slli t4, t2, 1
    addi t4, t4, 1
    sw   t4, 0(t1)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, 1
    li   t5, 16
    bne  t2, t5, init

    li   s0, 0          # i
outer_i:
    li   s1, 0          # j
outer_j:
    li   s2, 0          # k
    li   s3, 0          # acc
inner_k:
    # A[i*4+k]
    slli t0, s0, 2
    add  t0, t0, s2
    slli t0, t0, 2
    la   t1, A
    add  t1, t1, t0
    lw   a1, 0(t1)
    # B[k*4+j]
    slli t0, s2, 2
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, B
    add  t1, t1, t0
    lw   a2, 0(t1)
    call mul32
    add  s3, s3, a0
    addi s2, s2, 1
    li   t5, 4
    bne  s2, t5, inner_k
    # C[i*4+j] = acc
    slli t0, s0, 2
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, C
    add  t1, t1, t0
    sw   s3, 0(t1)
    addi s1, s1, 1
    li   t5, 4
    bne  s1, t5, outer_j
    addi s0, s0, 1
    li   t5, 4
    bne  s0, t5, outer_i

    # checksum: xor of C
    la   t0, C
    li   t1, 0
    li   a0, 0
sum:
    lw   t3, 0(t0)
    xor  a0, a0, t3
    add  a0, a0, t3
    addi t0, t0, 4
    addi t1, t1, 1
    li   t5, 16
    bne  t1, t5, sum
    ecall

mul32:                  # a0 = a1 * a2 (shift-add)
    li   a0, 0
mul_loop:
    andi t6, a2, 1
    beqz t6, mul_skip
    add  a0, a0, a1
mul_skip:
    slli a1, a1, 1
    srli a2, a2, 1
    bnez a2, mul_loop
    ret
"""

MATMULT_HW_SOURCE = """
.data
A: .space 64
B: .space 64
C: .space 64
.text
    # A[i] = i + 1 ; B[i] = 2*i + 1   (i in 0..15, word arrays)
    la   t0, A
    la   t1, B
    li   t2, 0
init:
    addi t3, t2, 1
    sw   t3, 0(t0)
    slli t4, t2, 1
    addi t4, t4, 1
    sw   t4, 0(t1)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, 1
    li   t5, 16
    bne  t2, t5, init

    li   s0, 0          # i
outer_i:
    li   s1, 0          # j
outer_j:
    li   s2, 0          # k
    li   s3, 0          # acc
inner_k:
    # A[i*4+k]
    slli t0, s0, 2
    add  t0, t0, s2
    slli t0, t0, 2
    la   t1, A
    add  t1, t1, t0
    lw   a1, 0(t1)
    # B[k*4+j]
    slli t0, s2, 2
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, B
    add  t1, t1, t0
    lw   a2, 0(t1)
    mul  a0, a1, a2
    add  s3, s3, a0
    addi s2, s2, 1
    li   t5, 4
    bne  s2, t5, inner_k
    # C[i*4+j] = acc
    slli t0, s0, 2
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, C
    add  t1, t1, t0
    sw   s3, 0(t1)
    addi s1, s1, 1
    li   t5, 4
    bne  s1, t5, outer_j
    addi s0, s0, 1
    li   t5, 4
    bne  s0, t5, outer_i

    # checksum: xor of C
    la   t0, C
    li   t1, 0
    li   a0, 0
sum:
    lw   t3, 0(t0)
    xor  a0, a0, t3
    add  a0, a0, t3
    addi t0, t0, 4
    addi t1, t1, 1
    li   t5, 16
    bne  t1, t5, sum
    ecall
"""

# ---------------------------------------------------------------------------
# bitcount — three popcount algorithms over a pseudo-random stream.
# ---------------------------------------------------------------------------
BITCOUNT_SOURCE = """
.text
    li   s0, 0x12345678  # x (LCG state)
    li   s1, 0           # total
    li   s2, 24          # iterations
loop:
    # x = x * 1103515245 + 12345  via shift-add multiply
    mv   a1, s0
    li   a2, 1103515245
    call mul32
    addi s0, a0, 0
    li   t0, 12345
    add  s0, s0, t0

    # method 1: naive bit loop
    mv   t0, s0
    li   t1, 0
nb:
    andi t2, t0, 1
    add  t1, t1, t2
    srli t0, t0, 1
    bnez t0, nb
    add  s1, s1, t1

    # method 2: Kernighan's trick
    mv   t0, s0
    li   t1, 0
kb:
    beqz t0, kdone
    addi t2, t0, -1
    and  t0, t0, t2
    addi t1, t1, 1
    j    kb
kdone:
    add  s1, s1, t1

    # method 3: nibble lookup in registers (shift/mask adds)
    mv   t0, s0
    li   t1, 0
xb:
    andi t2, t0, 3
    sltu t3, x0, t2      # t3 = t2 != 0
    li   t4, 3
    sltu t4, t2, t4      # t4 = t2 < 3
    xori t4, t4, 1       # t4 = t2 == 3
    add  t1, t1, t3
    add  t1, t1, t4
    srli t0, t0, 2
    bnez t0, xb
    add  s1, s1, t1

    addi s2, s2, -1
    bnez s2, loop
    mv   a0, s1
    ecall

mul32:
    li   a0, 0
mul_loop:
    andi t6, a2, 1
    beqz t6, mul_skip
    add  a0, a0, a1
mul_skip:
    slli a1, a1, 1
    srli a2, a2, 1
    bnez a2, mul_loop
    ret
"""

# ---------------------------------------------------------------------------
# primecount — sieve of Eratosthenes below 400.
# ---------------------------------------------------------------------------
PRIMECOUNT_SOURCE = """
.data
sieve: .space 400
.text
    li   s0, 400
    # composite marking
    li   s1, 2          # p
psieve:
    # mark multiples of p starting at 2p
    slli t0, s1, 1      # m = 2p
mark:
    bge  t0, s0, next_p
    la   t1, sieve
    add  t1, t1, t0
    li   t2, 1
    sb   t2, 0(t1)
    add  t0, t0, s1
    j    mark
next_p:
    addi s1, s1, 1
    # stop when p*p >= 400 (p >= 20)
    li   t3, 20
    blt  s1, t3, psieve

    # count unmarked from 2
    li   a0, 0
    li   t0, 2
count:
    la   t1, sieve
    add  t1, t1, t0
    lbu  t2, 0(t1)
    bnez t2, not_prime
    addi a0, a0, 1
not_prime:
    addi t0, t0, 1
    bne  t0, s0, count
    ecall
"""

# ---------------------------------------------------------------------------
# qsort — insertion sort of 32 LCG-generated words, checksum of order.
# ---------------------------------------------------------------------------
QSORT_SOURCE = """
.data
arr: .space 128
.text
    # generate 32 values with a xorshift-ish LCG (no multiply needed)
    li   t0, 0x2545F491
    la   t1, arr
    li   t2, 32
gen:
    slli t3, t0, 13
    xor  t0, t0, t3
    srli t3, t0, 17
    xor  t0, t0, t3
    slli t3, t0, 5
    xor  t0, t0, t3
    sw   t0, 0(t1)
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, gen

    # insertion sort (unsigned)
    li   s0, 1          # i
isort:
    li   t6, 32
    bge  s0, t6, done_sort
    la   t0, arr
    slli t1, s0, 2
    add  t0, t0, t1
    lw   s1, 0(t0)      # key
    addi s2, s0, -1     # j
inner:
    blt  s2, x0, place
    la   t0, arr
    slli t1, s2, 2
    add  t0, t0, t1
    lw   t2, 0(t0)
    bgeu s1, t2, place
    sw   t2, 4(t0)
    addi s2, s2, -1
    j    inner
place:
    la   t0, arr
    addi t1, s2, 1
    slli t1, t1, 2
    add  t0, t0, t1
    sw   s1, 0(t0)
    addi s0, s0, 1
    j    isort
done_sort:
    # checksum: sum of value*index parity -> xor-rotate accumulate
    la   t0, arr
    li   t1, 0
    li   a0, 0
cks:
    lw   t2, 0(t0)
    xor  a0, a0, t2
    slli t3, a0, 1
    srli t4, a0, 31
    or   a0, t3, t4
    addi t0, t0, 4
    addi t1, t1, 1
    li   t5, 32
    bne  t1, t5, cks
    ecall
"""


def _fp_array(values: List[float]) -> str:
    return ", ".join(str(_fp(v)) for v in values)


# ---------------------------------------------------------------------------
# fir — 4-tap FIR over 32 samples, binary16.
# ---------------------------------------------------------------------------
def _fir_source() -> str:
    taps = [0.25, 0.5, 0.125, 0.0625]
    samples = [((i * 37) % 17 - 8) * 0.25 for i in range(32)]
    return f"""
.data
taps: .half {_fp_array(taps)}
xs:   .half {_fp_array(samples)}
acc:  .half 0
.text
    li   s0, 3            # n, starting where the window fits
    li   s5, 0            # checksum accumulator (int)
    la   s1, taps
    la   s2, xs
fir_n:
    fmv.h.x fa0, x0       # y = 0
    li   s3, 0            # k
fir_k:
    slli t0, s3, 1
    add  t1, s1, t0
    flh  fa1, 0(t1)       # taps[k]
    sub  t2, s0, s3
    slli t2, t2, 1
    add  t2, s2, t2
    flh  fa2, 0(t2)       # xs[n-k]
    fmul.h fa3, fa1, fa2
    fadd.h fa0, fa0, fa3
    addi s3, s3, 1
    li   t3, 4
    bne  s3, t3, fir_k
    fmv.x.h t4, fa0
    add  s5, s5, t4
    addi s0, s0, 1
    li   t3, 32
    bne  s0, t3, fir_n
    mv   a0, s5
    ecall
"""


# ---------------------------------------------------------------------------
# edn — dot product and saxpy over 16-wide binary16 vectors.
# ---------------------------------------------------------------------------
def _edn_source() -> str:
    va = [((i * 13) % 9 - 4) * 0.5 for i in range(16)]
    vb = [((i * 7) % 11 - 5) * 0.25 for i in range(16)]
    return f"""
.data
va: .half {_fp_array(va)}
vb: .half {_fp_array(vb)}
vy: .space 32
.text
    # dot = sum(va[i] * vb[i])
    fmv.h.x fa0, x0
    la   s1, va
    la   s2, vb
    li   s0, 0
dot:
    slli t0, s0, 1
    add  t1, s1, t0
    flh  fa1, 0(t1)
    add  t2, s2, t0
    flh  fa2, 0(t2)
    fmul.h fa3, fa1, fa2
    fadd.h fa0, fa0, fa3
    addi s0, s0, 1
    li   t3, 16
    bne  s0, t3, dot

    # saxpy: vy[i] = dot * va[i] + vb[i]; checksum xors patterns
    la   s3, vy
    li   s0, 0
    li   a0, 0
saxpy:
    slli t0, s0, 1
    add  t1, s1, t0
    flh  fa1, 0(t1)
    add  t2, s2, t0
    flh  fa2, 0(t2)
    fmul.h fa4, fa0, fa1
    fadd.h fa4, fa4, fa2
    add  t4, s3, t0
    fsh  fa4, 0(t4)
    fmv.x.h t5, fa4
    xor  a0, a0, t5
    slli t6, a0, 3
    srli t5, a0, 29
    or   a0, t6, t5
    addi s0, s0, 1
    li   t3, 16
    bne  s0, t3, saxpy
    ecall
"""


# ---------------------------------------------------------------------------
# st — mean and variance statistics, binary16.
# ---------------------------------------------------------------------------
def _st_source() -> str:
    data = [((i * 29) % 23 - 11) * 0.125 for i in range(24)]
    inv_n = 1.0 / 24
    return f"""
.data
xs: .half {_fp_array(data)}
.text
    # mean = (1/24) * sum(x)
    fmv.h.x fa0, x0
    la   s1, xs
    li   s0, 0
msum:
    slli t0, s0, 1
    add  t1, s1, t0
    flh  fa1, 0(t1)
    fadd.h fa0, fa0, fa1
    addi s0, s0, 1
    li   t3, 24
    bne  s0, t3, msum
    li   t4, {_fp(inv_n)}
    fmv.h.x fa2, t4
    fmul.h fa0, fa0, fa2   # mean

    # var = (1/24) * sum((x - mean)^2)
    fmv.h.x fa3, x0
    li   s0, 0
vsum:
    slli t0, s0, 1
    add  t1, s1, t0
    flh  fa1, 0(t1)
    fsub.h fa4, fa1, fa0
    fmul.h fa5, fa4, fa4
    fadd.h fa3, fa3, fa5
    addi s0, s0, 1
    li   t3, 24
    bne  s0, t3, vsum
    fmul.h fa3, fa3, fa2

    fmv.x.h t0, fa0
    fmv.x.h t1, fa3
    slli t1, t1, 16
    or   a0, t0, t1
    ecall
"""


# ---------------------------------------------------------------------------
# nbody — pairwise interaction accumulation over 8 bodies, binary16.
# ---------------------------------------------------------------------------
def _nbody_source() -> str:
    xs = [((i * 19) % 13 - 6) * 0.25 for i in range(8)]
    ys = [((i * 23) % 11 - 5) * 0.25 for i in range(8)]
    ms = [1.0 + (i % 3) * 0.5 for i in range(8)]
    return f"""
.data
px: .half {_fp_array(xs)}
py: .half {_fp_array(ys)}
pm: .half {_fp_array(ms)}
.text
    # energy-like sum: E += m_i * m_j * (dx*dx + dy*dy)
    fmv.h.x fs0, x0
    li   s0, 0            # i
ni:
    addi s1, s0, 1        # j
nj:
    li   t3, 8
    bge  s1, t3, ni_next
    la   t0, px
    slli t1, s0, 1
    add  t2, t0, t1
    flh  fa0, 0(t2)       # x_i
    slli t4, s1, 1
    add  t5, t0, t4
    flh  fa1, 0(t5)       # x_j
    fsub.h fa2, fa0, fa1  # dx
    la   t0, py
    add  t2, t0, t1
    flh  fa0, 0(t2)
    add  t5, t0, t4
    flh  fa1, 0(t5)
    fsub.h fa3, fa0, fa1  # dy
    fmul.h fa2, fa2, fa2
    fmul.h fa3, fa3, fa3
    fadd.h fa2, fa2, fa3  # r2
    la   t0, pm
    add  t2, t0, t1
    flh  fa0, 0(t2)
    add  t5, t0, t4
    flh  fa1, 0(t5)
    fmul.h fa0, fa0, fa1  # m_i * m_j
    fmul.h fa2, fa0, fa2
    fadd.h fs0, fs0, fa2
    addi s1, s1, 1
    j    nj
ni_next:
    addi s0, s0, 1
    li   t3, 7
    ble  s0, t3, ni
    fmv.x.h a0, fs0
    ecall
"""


# ---------------------------------------------------------------------------
# minver — 3x3 matrix inversion via adjugate and a Newton reciprocal.
# ---------------------------------------------------------------------------
def _minver_source() -> str:
    matrix = [2.0, 0.5, 1.0, -1.0, 1.5, 0.25, 0.5, -0.75, 1.25]
    return f"""
.data
M:   .half {_fp_array(matrix)}
ADJ: .space 18
.text
    # adj[0] = M4*M8 - M5*M7, etc. (cofactor expansion); all via
    # flh/fmul/fsub.  Offsets are element*2 bytes.
    la   s0, M
    la   s1, ADJ

    # helper-free unrolled cofactors
    flh  fa0, 8(s0)    # M4
    flh  fa1, 16(s0)   # M8
    fmul.h fa2, fa0, fa1
    flh  fa0, 10(s0)   # M5
    flh  fa1, 14(s0)   # M7
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 0(s1)    # adj00

    flh  fa0, 4(s0)    # M2
    flh  fa1, 14(s0)   # M7
    fmul.h fa2, fa0, fa1
    flh  fa0, 2(s0)    # M1
    flh  fa1, 16(s0)   # M8
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 2(s1)    # adj01

    flh  fa0, 2(s0)    # M1
    flh  fa1, 10(s0)   # M5
    fmul.h fa2, fa0, fa1
    flh  fa0, 4(s0)    # M2
    flh  fa1, 8(s0)    # M4
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 4(s1)    # adj02

    flh  fa0, 10(s0)   # M5
    flh  fa1, 12(s0)   # M6
    fmul.h fa2, fa0, fa1
    flh  fa0, 6(s0)    # M3
    flh  fa1, 16(s0)   # M8
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 6(s1)    # adj10

    flh  fa0, 0(s0)    # M0
    flh  fa1, 16(s0)   # M8
    fmul.h fa2, fa0, fa1
    flh  fa0, 4(s0)    # M2
    flh  fa1, 12(s0)   # M6
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 8(s1)    # adj11

    flh  fa0, 4(s0)    # M2
    flh  fa1, 6(s0)    # M3
    fmul.h fa2, fa0, fa1
    flh  fa0, 0(s0)    # M0
    flh  fa1, 10(s0)   # M5
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 10(s1)   # adj12

    flh  fa0, 6(s0)    # M3
    flh  fa1, 14(s0)   # M7
    fmul.h fa2, fa0, fa1
    flh  fa0, 8(s0)    # M4
    flh  fa1, 12(s0)   # M6
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 12(s1)   # adj20

    flh  fa0, 2(s0)    # M1
    flh  fa1, 12(s0)   # M6
    fmul.h fa2, fa0, fa1
    flh  fa0, 0(s0)    # M0
    flh  fa1, 14(s0)   # M7
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 14(s1)   # adj21

    flh  fa0, 0(s0)    # M0
    flh  fa1, 8(s0)    # M4
    fmul.h fa2, fa0, fa1
    flh  fa0, 2(s0)    # M1
    flh  fa1, 6(s0)    # M3
    fmul.h fa3, fa0, fa1
    fsub.h fa2, fa2, fa3
    fsh  fa2, 16(s1)   # adj22

    # det = M0*adj00 + M1*adj10 + M2*adj20
    flh  fa0, 0(s0)
    flh  fa1, 0(s1)
    fmul.h fs0, fa0, fa1
    flh  fa0, 2(s0)
    flh  fa1, 6(s1)
    fmul.h fa2, fa0, fa1
    fadd.h fs0, fs0, fa2
    flh  fa0, 4(s0)
    flh  fa1, 12(s1)
    fmul.h fa2, fa0, fa1
    fadd.h fs0, fs0, fa2   # det

    # r ~= 1/det by Newton-Raphson: r' = r * (2 - det*r), 4 rounds,
    # seeded with 0.25 (valid for our matrix, det ~= 4.07).
    li   t0, {_fp(0.25)}
    fmv.h.x fs1, t0
    li   t1, {_fp(2.0)}
    fmv.h.x fs2, t1
    li   s2, 4
newton:
    fmul.h fa0, fs0, fs1
    fsub.h fa0, fs2, fa0
    fmul.h fs1, fs1, fa0
    addi s2, s2, -1
    bnez s2, newton

    # inverse = adj * r ; checksum xor-rotates the 9 bit patterns
    li   s3, 0
    li   a0, 0
invloop:
    slli t0, s3, 1
    add  t1, s1, t0
    flh  fa0, 0(t1)
    fmul.h fa0, fa0, fs1
    fmv.x.h t2, fa0
    xor  a0, a0, t2
    slli t3, a0, 5
    srli t4, a0, 27
    or   a0, t3, t4
    addi s3, s3, 1
    li   t5, 9
    bne  s3, t5, invloop
    ecall
"""


#: Inner kernel repetitions per harness iteration (embench's
#: ``benchmark_body`` runs its kernel in a loop the same way).
HARNESS_INNER = 8

#: Outer harness iterations per workload, sized so every benchmark runs
#: a few hundred thousand cycles — embench-scale — which is what makes
#: sub-1% profile-guided integration overhead achievable (Figure 9).
HARNESS_OUTER = {
    "crc32": 7,
    "matmult": 9,
    "matmult_hw": 24,
    "bitcount": 3,
    "primecount": 3,
    "qsort": 8,
    "fir": 16,
    "edn": 56,
    "st": 55,
    "nbody": 26,
    "minver": 104,
}


def _wrap_harness(source: str, outer: int, inner: int = HARNESS_INNER) -> str:
    """Wrap a kernel in the embench-style iteration harness.

    The kernel body runs ``outer * inner`` times; ``__bench_entry``
    (executed ``outer`` times) is the natural cool-but-routine
    integration point for profile-guided test splicing.  Registers
    ``s10``/``s11`` are reserved for the harness; every kernel is
    idempotent, so the final checksum equals a single-run checksum.
    """
    lines = source.splitlines()
    out: List[str] = []
    entered = False
    terminated = False
    for line in lines:
        if not entered and line.strip() == ".text":
            out.append(line)
            out.append(f"    li s11, {outer}")
            out.append("__bench_entry:")
            out.append(f"    li s10, {inner}")
            out.append("__bench_inner:")
            entered = True
            continue
        if entered and not terminated and line.strip() == "ecall":
            out.append("    addi s10, s10, -1")
            out.append("    bnez s10, __bench_inner")
            out.append("    addi s11, s11, -1")
            out.append("    bnez s11, __bench_entry")
            out.append("    ecall")
            terminated = True
            continue
        out.append(line)
    if not (entered and terminated):
        raise ValueError("kernel source missing .text or ecall")
    return "\n".join(out)


def _build_registry() -> Dict[str, Workload]:
    kernels = [
        ("crc32", "int", "bitwise CRC-32 over 64 bytes", CRC32_SOURCE),
        ("matmult", "int", "4x4 integer matrix multiply", MATMULT_SOURCE),
        ("matmult_hw", "int", "4x4 matrix multiply via RV32M mul", MATMULT_HW_SOURCE),
        ("bitcount", "int", "population counts, three ways", BITCOUNT_SOURCE),
        ("primecount", "int", "sieve of Eratosthenes < 400", PRIMECOUNT_SOURCE),
        ("qsort", "int", "insertion sort of 32 words", QSORT_SOURCE),
        ("fir", "fp", "4-tap FIR filter, binary16", _fir_source()),
        ("edn", "fp", "dot product + saxpy, binary16", _edn_source()),
        ("st", "fp", "mean/variance statistics, binary16", _st_source()),
        ("nbody", "fp", "pairwise interactions, binary16", _nbody_source()),
        ("minver", "fp", "3x3 matrix inversion, binary16", _minver_source()),
    ]
    return {
        name: Workload(
            name,
            kind,
            description,
            _wrap_harness(source, HARNESS_OUTER[name]),
        )
        for name, kind, description, source in kernels
    }


WORKLOADS: Dict[str, Workload] = _build_registry()

#: The paper's representative workload for Aging Analysis (§4).
REPRESENTATIVE = "minver"
