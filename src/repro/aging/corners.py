"""Operating corners for statically robust timing analysis (§3.2.2).

Foundry sign-off requires STA under pessimistic combinations of process,
voltage, and temperature plus on-chip-variation derates.  The paper's
Aging-Aware STA runs at the most pessimistic corner — so that while some
flagged paths may never fail in the field, every real-world failing path
is captured.  This module defines that corner structure.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperatingCorner:
    """One analysis corner.

    Attributes:
        name: Human-readable corner label.
        temperature_c: Junction temperature assumed for BTI and delays.
        voltage_scale: Supply relative to nominal; low voltage slows
            gates, so worst-case setup analysis uses < 1.0.
        late_derate: On-chip-variation multiplier applied to *max* path
            delays (pessimistic for setup checks).
        early_derate: OCV multiplier applied to *min* path delays
            (pessimistic for hold checks).
        hci_stress_scale: Multiplier on the hot-carrier transition
            stress at this corner (:mod:`repro.aging.hci`) — hot,
            undervolted parts inject more energetic carriers per
            toggle.  1.0 keeps HCI corner-neutral; the field defaults
            so delay models cached before HCI existed round-trip
            unchanged.
    """

    name: str
    temperature_c: float
    voltage_scale: float
    late_derate: float
    early_derate: float
    hci_stress_scale: float = 1.0

    def scale_max_delay(self, delay: float) -> float:
        """Worst-case (late) view of a max delay at this corner."""
        return delay * self.late_derate / self.voltage_scale

    def scale_min_delay(self, delay: float) -> float:
        """Best-case (early) view of a min delay at this corner."""
        return delay * self.early_derate * self.voltage_scale


#: Sign-off corner: hot, undervolted, with +/-5 % OCV derates.
WORST_CORNER = OperatingCorner(
    name="ss_0.81v_105c",
    temperature_c=105.0,
    voltage_scale=0.95,
    late_derate=1.05,
    early_derate=0.95,
    hci_stress_scale=1.15,
)

#: Typical corner, for comparison/ablation runs.
TYPICAL_CORNER = OperatingCorner(
    name="tt_0.90v_25c",
    temperature_c=25.0,
    voltage_scale=1.0,
    late_derate=1.0,
    early_derate=1.0,
    hci_stress_scale=0.9,
)
