"""Render one or more BENCH_*.json documents as a markdown trajectory.

``repro bench report BENCH_*.json`` turns the machine-readable sample
documents back into something a human (or a PR description) can read:
one section per benchmark, one row per sample, with the identity
metadata inlined and provenance (git rev, smoke) surfaced once per
document.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Mapping

from .compare import VOLATILE_KEYS
from .sample import document_samples, parse_document

_HIDDEN = VOLATILE_KEYS | {"smoke", "timing", "bigger_is_better"}


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_document(data: Mapping) -> str:
    samples = document_samples(data)
    provenance = {}
    if samples:
        meta = samples[0].metadata
        for key in ("git_rev", "smoke"):
            if key in meta:
                provenance[key] = meta[key]
    prov = ", ".join(f"{k}={v}" for k, v in provenance.items())
    lines = [f"## {data.get('benchmark', '?')}" + (f"  ({prov})" if prov else "")]
    lines.append("")
    lines.append("| metric | value | unit | context |")
    lines.append("|---|---|---|---|")
    for sample in samples:
        ctx = ", ".join(
            f"{k}={_fmt_value(v)}"
            for k, v in sorted(sample.metadata.items())
            if k not in _HIDDEN
        )
        lines.append(
            f"| {sample.metric} | {_fmt_value(sample.value)} "
            f"| {sample.unit} | {ctx} |"
        )
    return "\n".join(lines)


def render_report(paths: Iterable[str | pathlib.Path]) -> str:
    """Markdown for every document, sorted by benchmark name."""
    documents: List[Mapping] = []
    for path in paths:
        documents.append(parse_document(pathlib.Path(path).read_text()))
    documents.sort(key=lambda d: str(d.get("benchmark", "")))
    sections = ["# Benchmark trajectory", ""]
    total = 0
    for data in documents:
        sections.append(render_document(data))
        sections.append("")
        total += len(data["samples"])
    sections.append(
        f"_{len(documents)} benchmark(s), {total} sample(s)._"
    )
    return "\n".join(sections)
