"""Binary encoding/decoding for the VR32 instruction set.

The simulator executes decoded :class:`~repro.cpu.isa.Instruction`
objects, but several artifact flows want real machine words: the C
aging library can embed ``.word`` images, SiliFuzz-style corpora are
binary, and a deployment would flash encoded test blobs.  This module
provides RV32-compatible encodings for the subset VR32 shares with
RISC-V, plus custom-opcode encodings for the binary16 extension.

Encodings follow the standard RISC-V formats (R/I/S/B/U/J); the FP16
ops use the OP-FP major opcode with the half-precision ``fmt`` field,
and branch/jump targets are encoded PC-relative.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .isa import Fmt, Instruction

OPCODE_OP = 0b0110011
OPCODE_OP_IMM = 0b0010011
OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_BRANCH = 0b1100011
OPCODE_LUI = 0b0110111
OPCODE_AUIPC = 0b0010111
OPCODE_JAL = 0b1101111
OPCODE_JALR = 0b1100111
OPCODE_OP_FP = 0b1010011
OPCODE_LOAD_FP = 0b0000111
OPCODE_STORE_FP = 0b0100111
OPCODE_SYSTEM = 0b1110011

#: funct3/funct7 for R-type integer ops (including RV32M multiplies).
_R_FUNCT: Dict[str, Tuple[int, int]] = {
    "mul": (0b000, 0b0000001),
    "mulh": (0b001, 0b0000001),
    "mulhsu": (0b010, 0b0000001),
    "mulhu": (0b011, 0b0000001),
    "add": (0b000, 0b0000000),
    "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000),
    "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000),
    "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000),
    "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000),
    "and": (0b111, 0b0000000),
}

_I_FUNCT: Dict[str, Tuple[int, Optional[int]]] = {
    "addi": (0b000, None),
    "slti": (0b010, None),
    "sltiu": (0b011, None),
    "xori": (0b100, None),
    "ori": (0b110, None),
    "andi": (0b111, None),
    "slli": (0b001, 0b0000000),
    "srli": (0b101, 0b0000000),
    "srai": (0b101, 0b0100000),
}

_LOAD_FUNCT = {"lb": 0b000, "lh": 0b001, "lw": 0b010, "lbu": 0b100, "lhu": 0b101}
_STORE_FUNCT = {"sb": 0b000, "sh": 0b001, "sw": 0b010}
_BRANCH_FUNCT = {
    "beq": 0b000, "bne": 0b001, "blt": 0b100,
    "bge": 0b101, "bltu": 0b110, "bgeu": 0b111,
}

#: OP-FP funct7 (fmt=10 'H' in the low two bits, as in Zfh).
_FP_FUNCT7 = {
    "fadd.h": 0b0000010,
    "fsub.h": 0b0000110,
    "fmul.h": 0b0001010,
    "fmin.h": 0b0010110,  # funct3 selects min/max
    "fmax.h": 0b0010110,
    "feq.h": 0b1010010,
    "flt.h": 0b1010010,
    "fle.h": 0b1010010,
    "fmv.x.h": 0b1110010,
    "fmv.h.x": 0b1111010,
    "fcvt.w.h": 0b1100010,
    "fcvt.h.w": 0b1101010,
}
_FP_FUNCT3 = {
    "fmin.h": 0b000,
    "fmax.h": 0b001,
    "feq.h": 0b010,
    "flt.h": 0b001,
    "fle.h": 0b000,
}


class EncodeError(Exception):
    """Raised for unencodable operands (e.g. immediate out of range)."""


def _check_range(value: int, bits: int, what: str) -> int:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodeError(f"{what} {value} out of {bits}-bit range")
    return value & ((1 << bits) - 1)


def encode(instr: Instruction, pc: int = 0) -> int:
    """Encode one instruction at address ``pc`` into a 32-bit word."""
    name = instr.mnemonic
    fmt = instr.spec.fmt
    if fmt is Fmt.R:
        funct3, funct7 = _R_FUNCT[name]
        return (
            funct7 << 25 | instr.rs2 << 20 | instr.rs1 << 15
            | funct3 << 12 | instr.rd << 7 | OPCODE_OP
        )
    if fmt is Fmt.I:
        funct3, funct7 = _I_FUNCT[name]
        if funct7 is not None:  # shifts: shamt in imm[4:0]
            shamt = instr.imm & 0x1F
            return (
                funct7 << 25 | shamt << 20 | instr.rs1 << 15
                | funct3 << 12 | instr.rd << 7 | OPCODE_OP_IMM
            )
        imm = _check_range(_signed(instr.imm), 12, "immediate")
        return (
            imm << 20 | instr.rs1 << 15 | funct3 << 12
            | instr.rd << 7 | OPCODE_OP_IMM
        )
    if fmt is Fmt.LOAD:
        imm = _check_range(_signed(instr.imm), 12, "offset")
        return (
            imm << 20 | instr.rs1 << 15 | _LOAD_FUNCT[name] << 12
            | instr.rd << 7 | OPCODE_LOAD
        )
    if fmt is Fmt.STORE:
        imm = _check_range(_signed(instr.imm), 12, "offset")
        return (
            (imm >> 5) << 25 | instr.rs2 << 20 | instr.rs1 << 15
            | _STORE_FUNCT[name] << 12 | (imm & 0x1F) << 7 | OPCODE_STORE
        )
    if fmt is Fmt.BRANCH:
        offset = _check_range(instr.target - pc, 13, "branch offset")
        return (
            ((offset >> 12) & 1) << 31 | ((offset >> 5) & 0x3F) << 25
            | instr.rs2 << 20 | instr.rs1 << 15
            | _BRANCH_FUNCT[name] << 12
            | ((offset >> 1) & 0xF) << 8 | ((offset >> 11) & 1) << 7
            | OPCODE_BRANCH
        )
    if fmt is Fmt.U:
        opcode = OPCODE_LUI if name == "lui" else OPCODE_AUIPC
        return (instr.imm & 0xFFFFF) << 12 | instr.rd << 7 | opcode
    if fmt is Fmt.JAL:
        offset = _check_range(instr.target - pc, 21, "jump offset")
        return (
            ((offset >> 20) & 1) << 31 | ((offset >> 1) & 0x3FF) << 21
            | ((offset >> 11) & 1) << 20 | ((offset >> 12) & 0xFF) << 12
            | instr.rd << 7 | OPCODE_JAL
        )
    if fmt is Fmt.JALR:
        imm = _check_range(_signed(instr.imm), 12, "offset")
        return imm << 20 | instr.rs1 << 15 | instr.rd << 7 | OPCODE_JALR
    if fmt in (Fmt.FR, Fmt.FCMP):
        funct7 = _FP_FUNCT7[name]
        funct3 = _FP_FUNCT3.get(name, 0)
        rd = instr.rd if fmt is Fmt.FCMP else instr.fd
        return (
            funct7 << 25 | instr.fs2 << 20 | instr.fs1 << 15
            | funct3 << 12 | rd << 7 | OPCODE_OP_FP
        )
    if fmt is Fmt.FLOAD:
        imm = _check_range(_signed(instr.imm), 12, "offset")
        return (
            imm << 20 | instr.rs1 << 15 | 0b001 << 12
            | instr.fd << 7 | OPCODE_LOAD_FP
        )
    if fmt is Fmt.FSTORE:
        imm = _check_range(_signed(instr.imm), 12, "offset")
        return (
            (imm >> 5) << 25 | instr.fs2 << 20 | instr.rs1 << 15
            | 0b001 << 12 | (imm & 0x1F) << 7 | OPCODE_STORE_FP
        )
    if fmt is Fmt.FMVXH:
        return (
            _FP_FUNCT7["fmv.x.h"] << 25 | instr.fs1 << 15
            | instr.rd << 7 | OPCODE_OP_FP
        )
    if fmt is Fmt.FMVHX:
        return (
            _FP_FUNCT7["fmv.h.x"] << 25 | instr.rs1 << 15
            | instr.fd << 7 | OPCODE_OP_FP
        )
    if fmt is Fmt.FCVTWH:
        return (
            _FP_FUNCT7["fcvt.w.h"] << 25 | instr.fs1 << 15
            | instr.rd << 7 | OPCODE_OP_FP
        )
    if fmt is Fmt.FCVTHW:
        return (
            _FP_FUNCT7["fcvt.h.w"] << 25 | instr.rs1 << 15
            | instr.fd << 7 | OPCODE_OP_FP
        )
    if name == "ecall":
        return OPCODE_SYSTEM
    if name == "frflags":
        # csrrs rd, fflags, x0
        return 0x001 << 20 | 0b010 << 12 | instr.rd << 7 | OPCODE_SYSTEM
    if name == "fsflags":
        # csrrw x0, fflags, rs1
        return 0x001 << 20 | instr.rs1 << 15 | 0b001 << 12 | OPCODE_SYSTEM
    raise EncodeError(f"no encoding for {name!r}")  # pragma: no cover


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >> 31 else value


def _sext(value: int, bits: int) -> int:
    if value >> (bits - 1):
        value -= 1 << bits
    return value


class DecodeError(Exception):
    """Raised for unrecognized instruction words."""


def decode(word: int, pc: int = 0) -> Instruction:
    """Decode a 32-bit word (encoded at address ``pc``)."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == OPCODE_OP:
        for name, (f3, f7) in _R_FUNCT.items():
            if (f3, f7) == (funct3, funct7):
                return Instruction(name, rd=rd, rs1=rs1, rs2=rs2)
        raise DecodeError(f"unknown R-type {word:#010x}")
    if opcode == OPCODE_OP_IMM:
        for name, (f3, f7) in _I_FUNCT.items():
            if f3 != funct3:
                continue
            if f7 is not None:
                if f7 == funct7:
                    return Instruction(name, rd=rd, rs1=rs1, imm=rs2)
                continue
            return Instruction(
                name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12)
            )
        raise DecodeError(f"unknown I-type {word:#010x}")
    if opcode == OPCODE_LOAD:
        for name, f3 in _LOAD_FUNCT.items():
            if f3 == funct3:
                return Instruction(
                    name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12)
                )
        raise DecodeError(f"unknown load {word:#010x}")
    if opcode == OPCODE_STORE:
        imm = _sext((funct7 << 5) | rd, 12)
        for name, f3 in _STORE_FUNCT.items():
            if f3 == funct3:
                return Instruction(name, rs1=rs1, rs2=rs2, imm=imm)
        raise DecodeError(f"unknown store {word:#010x}")
    if opcode == OPCODE_BRANCH:
        offset = _sext(
            ((word >> 31) & 1) << 12 | ((word >> 7) & 1) << 11
            | ((word >> 25) & 0x3F) << 5 | ((word >> 8) & 0xF) << 1,
            13,
        )
        for name, f3 in _BRANCH_FUNCT.items():
            if f3 == funct3:
                return Instruction(
                    name, rs1=rs1, rs2=rs2, target=pc + offset
                )
        raise DecodeError(f"unknown branch {word:#010x}")
    if opcode in (OPCODE_LUI, OPCODE_AUIPC):
        name = "lui" if opcode == OPCODE_LUI else "auipc"
        return Instruction(name, rd=rd, imm=(word >> 12) & 0xFFFFF)
    if opcode == OPCODE_JAL:
        offset = _sext(
            ((word >> 31) & 1) << 20 | ((word >> 12) & 0xFF) << 12
            | ((word >> 20) & 1) << 11 | ((word >> 21) & 0x3FF) << 1,
            21,
        )
        return Instruction("jal", rd=rd, target=pc + offset)
    if opcode == OPCODE_JALR:
        return Instruction("jalr", rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if opcode == OPCODE_LOAD_FP:
        return Instruction("flh", fd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if opcode == OPCODE_STORE_FP:
        imm = _sext((funct7 << 5) | rd, 12)
        return Instruction("fsh", fs2=rs2, rs1=rs1, imm=imm)
    if opcode == OPCODE_OP_FP:
        if funct7 == _FP_FUNCT7["fmv.x.h"]:
            return Instruction("fmv.x.h", rd=rd, fs1=rs1)
        if funct7 == _FP_FUNCT7["fmv.h.x"]:
            return Instruction("fmv.h.x", fd=rd, rs1=rs1)
        if funct7 == _FP_FUNCT7["fcvt.w.h"]:
            return Instruction("fcvt.w.h", rd=rd, fs1=rs1)
        if funct7 == _FP_FUNCT7["fcvt.h.w"]:
            return Instruction("fcvt.h.w", fd=rd, rs1=rs1)
        if funct7 == _FP_FUNCT7["feq.h"]:
            name = {0b010: "feq.h", 0b001: "flt.h", 0b000: "fle.h"}.get(funct3)
            if name:
                return Instruction(name, rd=rd, fs1=rs1, fs2=rs2)
        if funct7 == _FP_FUNCT7["fmin.h"]:
            name = {0b000: "fmin.h", 0b001: "fmax.h"}.get(funct3)
            if name:
                return Instruction(name, fd=rd, fs1=rs1, fs2=rs2)
        for name in ("fadd.h", "fsub.h", "fmul.h"):
            if funct7 == _FP_FUNCT7[name]:
                return Instruction(name, fd=rd, fs1=rs1, fs2=rs2)
        raise DecodeError(f"unknown OP-FP {word:#010x}")
    if opcode == OPCODE_SYSTEM:
        if word == OPCODE_SYSTEM:
            return Instruction("ecall")
        if funct3 == 0b010:
            return Instruction("frflags", rd=rd)
        if funct3 == 0b001:
            return Instruction("fsflags", rs1=rs1)
        raise DecodeError(f"unknown system {word:#010x}")
    raise DecodeError(f"unknown opcode {opcode:#04x} in {word:#010x}")


def encode_program(instructions, base_pc: int = 0):
    """Encode a list of instructions; returns list of 32-bit words."""
    return [
        encode(instr, pc=base_pc + 4 * index)
        for index, instr in enumerate(instructions)
    ]
