"""Ablation — bottom-up (Vega) vs top-down (SiliFuzz-style) testing.

The paper's §6.1 contrasts the approaches qualitatively: top-down
frameworks "produce a large volume of tests" for broad coverage, while
Vega's targeted suites are small enough to run per second.  This
benchmark makes the trade-off quantitative on our ALU failures:

* detection rate of a snapshot corpus vs Vega's suite, and
* the *cycle cost* at which each reaches its rate — the axis that
  decides whether tests can live inside an application.
"""

from repro.baselines.silifuzz_lite import SiliFuzzLite
from repro.cpu.cosim import GateAluBackend
from repro.lifting.models import CMode

CORPUS_SIZES = (4, 16, 64)


def test_ablation_topdown_vs_bottom_up(ctx, benchmark, recorder):
    unit = ctx.alu
    suite = unit.suite(False)
    suite_cycles = suite.suite_cycles()
    failing = [
        f for f in unit.failing_netlists() if f.model.c_mode is CMode.ONE
    ]
    assert failing

    fuzzer = SiliFuzzLite("alu", seed=5)
    rows = [
        "approach          | tests | cycles/pass | detected",
        f"vega (bottom-up)  | {len(suite.test_cases):5d} | "
        f"{suite_cycles:11d} | "
        + "/".join(
            "hit" if unit.run_suite_against(suite, f.netlist).detected
            else "miss"
            for f in failing
        ),
    ]
    vega_detect = all(
        unit.run_suite_against(suite, f.netlist).detected for f in failing
    )
    corpus_results = {}
    for size in CORPUS_SIZES:
        corpus = fuzzer.corpus(size)
        total_cycles = sum(s.cycles for s in corpus)
        hits = []
        for fail in failing:
            verdict = fuzzer.detects(
                corpus, alu=GateAluBackend(fail.netlist)
            )
            hits.append(verdict["detected"])
        corpus_results[size] = (total_cycles, hits)
        rows.append(
            f"silifuzz-lite x{size:3d} | {size:5d} | {total_cycles:11d} | "
            + "/".join("hit" if h else "miss" for h in hits)
        )
        recorder.sample(
            "ablation_topdown_vs_bottomup", "corpus_cycles", total_cycles,
            "cycles", approach="silifuzz", corpus_size=size,
        )
        recorder.sample(
            "ablation_topdown_vs_bottomup", "detections", sum(hits),
            "netlists", approach="silifuzz", corpus_size=size,
            bigger_is_better=True,
        )
    recorder.sample(
        "ablation_topdown_vs_bottomup", "corpus_cycles", suite_cycles,
        "cycles", approach="vega",
    )
    recorder.sample(
        "ablation_topdown_vs_bottomup", "detections",
        sum(
            unit.run_suite_against(suite, f.netlist).detected
            for f in failing
        ),
        "netlists", approach="vega", bigger_is_better=True,
    )
    recorder.table("ablation_topdown_vs_bottomup", "\n".join(rows))

    # Vega detects everything at its (small) cycle budget.
    assert vega_detect
    # The top-down corpus eventually detects too — by volume...
    largest = corpus_results[CORPUS_SIZES[-1]]
    assert all(largest[1])
    # ...but needs far more cycles per pass than Vega's suite.
    assert largest[0] > 5 * suite_cycles

    # Benchmark: generating + golden-running a small corpus.
    result = benchmark(fuzzer.corpus, 8)
    assert len(result) == 8
