"""Cycle-counting ISA simulator with pluggable functional units.

The simulator executes assembled :class:`~repro.cpu.asm.Program`s.  The
ALU and FPU are *backends* behind narrow interfaces, so the same program
can run against

* golden software models (fast path, used for workload profiling and
  the Figure 9 overhead runs), or
* gate-level netlists via :mod:`repro.cpu.cosim` — including *failing*
  netlists from failure-model instrumentation, which is how Tables 6
  and 7 measure detection quality.

The simulator also collects basic-block execution counts (leader PCs)
when profiling is enabled, feeding profile-guided test integration, and
records the operand stream seen by each unit, feeding SP profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from . import float16 as sf
from .alu_design import alu_reference
from .asm import DATA_BASE, Program
from .fpu_design import fpu_reference
from .mdu_design import mdu_reference
from .isa import Fmt, Instruction, TAKEN_BRANCH_PENALTY


class CpuError(Exception):
    """Illegal access or malformed execution."""


class CpuStall(CpuError):
    """The CPU stopped making progress (e.g. a dead FPU handshake).

    Per the paper (§5.2.3), some injected failures corrupt ready/valid
    signals so the core waits forever; from software this is a hang,
    which the test harness detects via a watchdog and reports as a
    *detected* failure.
    """


class IntBackend(Protocol):
    def execute(self, op: int, a: int, b: int) -> int: ...


class FpBackend(Protocol):
    def execute(self, op: int, a: int, b: int) -> Tuple[int, int]: ...


class GoldenAlu:
    """Reference ALU backend (pure software)."""

    def __init__(self) -> None:
        self.operand_log: List[Dict[str, int]] = []
        self.log_operands = False

    def execute(self, op: int, a: int, b: int) -> int:
        if self.log_operands:
            self.operand_log.append(
                {"op": int(op), "a": a, "b": b, "mode": 0, "dft": 0}
            )
        return alu_reference(op, a, b)


class GoldenFpu:
    """Reference FPU backend (software binary16)."""

    def __init__(self) -> None:
        self.operand_log: List[Dict[str, int]] = []
        self.log_operands = False

    def execute(self, op: int, a: int, b: int) -> Tuple[int, int]:
        if self.log_operands:
            self.operand_log.append(
                {"op": op, "a": a, "b": b, "rm": 0, "in_valid": 1, "dft": 0}
            )
        return fpu_reference(op, a, b)


class GoldenMdu:
    """Reference multiply-unit backend (pure software)."""

    def __init__(self) -> None:
        self.operand_log: List[Dict[str, int]] = []
        self.log_operands = False

    def execute(self, op: int, a: int, b: int) -> int:
        if self.log_operands:
            self.operand_log.append(
                {"op": int(op), "a": a, "b": b, "dft": 0}
            )
        return mdu_reference(op, a, b)


@dataclass
class RunResult:
    """Outcome of a completed run (``ecall`` reached)."""

    exit_value: int
    cycles: int
    instructions: int
    block_counts: Dict[int, int] = field(default_factory=dict)


MEM_SIZE = 1 << 20


class Cpu:
    """In-order, single-issue VR32 core model."""

    def __init__(
        self,
        program: Program,
        alu: Optional[IntBackend] = None,
        fpu: Optional[FpBackend] = None,
        mdu: Optional[IntBackend] = None,
        profile: bool = False,
    ):
        self.program = program
        self.alu = alu or GoldenAlu()
        self.fpu = fpu or GoldenFpu()
        self.mdu = mdu or GoldenMdu()
        self.profile = profile
        self.regs = [0] * 32
        self.fregs = [0] * 32
        self.fflags = 0
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self.memory = bytearray(MEM_SIZE)
        self.block_counts: Dict[int, int] = {}
        self.memory[DATA_BASE : DATA_BASE + len(program.data)] = program.data
        # Stack pointer starts at the top of memory.
        self.regs[2] = MEM_SIZE - 16

    # -- register/memory helpers ---------------------------------------
    def _write_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & 0xFFFFFFFF

    def _read_mem(self, address: int, size: int, signed: bool) -> int:
        if address < 0 or address + size > MEM_SIZE:
            raise CpuError(f"load outside memory: {address:#x}")
        raw = int.from_bytes(self.memory[address : address + size], "little")
        if signed and raw >> (size * 8 - 1):
            raw -= 1 << (size * 8)
        return raw & 0xFFFFFFFF

    def _write_mem(self, address: int, size: int, value: int) -> None:
        if address < 0 or address + size > MEM_SIZE:
            raise CpuError(f"store outside memory: {address:#x}")
        self.memory[address : address + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")

    @staticmethod
    def _signed(value: int) -> int:
        return value - (1 << 32) if value >> 31 else value

    # -- execution ------------------------------------------------------
    def run(self, max_instructions: int = 10_000_000) -> RunResult:
        """Execute until ``ecall``; returns the a0 register as exit value."""
        executed = 0
        leaders = self.program.leaders if self.profile else ()
        instructions = self.program.instructions
        count = len(instructions)
        profiling = self.profile
        block_counts = self.block_counts
        execute = self._execute
        while True:
            index = self.pc >> 2
            if index >= count:
                raise CpuError(f"PC fell off the program: {self.pc:#x}")
            if executed >= max_instructions:
                raise CpuStall(
                    f"no ecall within {max_instructions} instructions"
                )
            if profiling and self.pc in leaders:
                block_counts[self.pc] = block_counts.get(self.pc, 0) + 1
            executed += 1
            if execute(instructions[index]):
                self.instret += executed
                return RunResult(
                    exit_value=self.regs[10],
                    cycles=self.cycles,
                    instructions=executed,
                    block_counts=dict(block_counts),
                )

    def _execute(self, instr: Instruction) -> bool:
        """Run one instruction; True when the program halts."""
        spec = instr.spec
        fmt = spec.fmt
        self.cycles += spec.cycles
        next_pc = self.pc + 4
        name = instr.mnemonic

        if fmt is Fmt.R:
            if spec.mdu_op is not None:
                result = self.mdu.execute(
                    spec.mdu_op, self.regs[instr.rs1], self.regs[instr.rs2]
                )
            else:
                result = self.alu.execute(
                    spec.alu_op, self.regs[instr.rs1], self.regs[instr.rs2]
                )
            if instr.rd:
                self.regs[instr.rd] = result & 0xFFFFFFFF
        elif fmt is Fmt.I:
            result = self.alu.execute(
                spec.alu_op, self.regs[instr.rs1], instr.imm & 0xFFFFFFFF
            )
            if instr.rd:
                self.regs[instr.rd] = result & 0xFFFFFFFF
        elif fmt is Fmt.BRANCH:
            a, b = self.regs[instr.rs1], self.regs[instr.rs2]
            if name == "beq":
                taken = a == b
            elif name == "bne":
                taken = a != b
            elif name == "bltu":
                taken = a < b
            elif name == "bgeu":
                taken = a >= b
            else:
                sa = a - 0x100000000 if a >> 31 else a
                sb = b - 0x100000000 if b >> 31 else b
                taken = sa < sb if name == "blt" else sa >= sb
            if taken:
                next_pc = instr.target
                self.cycles += TAKEN_BRANCH_PENALTY
        elif fmt is Fmt.LOAD:
            address = (self.regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
            self._write_reg(
                instr.rd,
                self._read_mem(address, spec.mem_size, spec.mem_signed),
            )
        elif fmt is Fmt.STORE:
            address = (self.regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
            self._write_mem(address, spec.mem_size, self.regs[instr.rs2])
        elif fmt is Fmt.U:
            if name == "lui":
                self._write_reg(instr.rd, (instr.imm << 12) & 0xFFFFFFFF)
            else:  # auipc
                self._write_reg(
                    instr.rd, (self.pc + (instr.imm << 12)) & 0xFFFFFFFF
                )
        elif fmt is Fmt.JAL:
            self._write_reg(instr.rd, next_pc)
            next_pc = instr.target
        elif fmt is Fmt.JALR:
            self._write_reg(instr.rd, next_pc)
            next_pc = (self.regs[instr.rs1] + instr.imm) & ~1 & 0xFFFFFFFF
        elif fmt is Fmt.FR:
            value, flags = self.fpu.execute(
                int(spec.fpu_op), self.fregs[instr.fs1], self.fregs[instr.fs2]
            )
            self.fregs[instr.fd] = value & 0xFFFF
            self.fflags |= flags
        elif fmt is Fmt.FCMP:
            value, flags = self.fpu.execute(
                int(spec.fpu_op), self.fregs[instr.fs1], self.fregs[instr.fs2]
            )
            self._write_reg(instr.rd, value)
            self.fflags |= flags
        elif fmt is Fmt.FLOAD:
            address = (self.regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
            self.fregs[instr.fd] = self._read_mem(address, 2, signed=False)
        elif fmt is Fmt.FSTORE:
            address = (self.regs[instr.rs1] + instr.imm) & 0xFFFFFFFF
            self._write_mem(address, 2, self.fregs[instr.fs2])
        elif fmt is Fmt.FMVXH:
            self._write_reg(instr.rd, self.fregs[instr.fs1])
        elif fmt is Fmt.FMVHX:
            self.fregs[instr.fd] = self.regs[instr.rs1] & 0xFFFF
        elif fmt is Fmt.FCVTWH:
            value, flags = sf.fp16_to_int(self.fregs[instr.fs1])
            self._write_reg(instr.rd, value)
            self.fflags |= flags
        elif fmt is Fmt.FCVTHW:
            value, flags = sf.fp16_from_int(self.regs[instr.rs1])
            self.fregs[instr.fd] = value
            self.fflags |= flags
        elif name == "frflags":
            self._write_reg(instr.rd, self.fflags)
        elif name == "fsflags":
            self.fflags = self.regs[instr.rs1] & 0x1F
        elif name == "ecall":
            return True
        else:  # pragma: no cover - SPECS and _execute stay in sync
            raise CpuError(f"unimplemented instruction {name!r}")
        self.pc = next_pc
        return False


def run_program(
    source_or_program,
    alu: Optional[IntBackend] = None,
    fpu: Optional[FpBackend] = None,
    mdu: Optional[IntBackend] = None,
    profile: bool = False,
    max_instructions: int = 10_000_000,
) -> RunResult:
    """Assemble (if needed) and run; convenience wrapper."""
    from .asm import assemble

    program = (
        source_or_program
        if isinstance(source_or_program, Program)
        else assemble(source_or_program)
    )
    cpu = Cpu(program, alu=alu, fpu=fpu, mdu=mdu, profile=profile)
    return cpu.run(max_instructions=max_instructions)
