"""Parallel fan-out of Error Lifting across endpoint pairs.

Every unique endpoint pair of the STA report is an independent unit of
work: it clones its own shadow netlist, runs its own BMC queries, and
produces its own :class:`~repro.lifting.lifter.PairResult`.  This module
shards those pairs across ``multiprocessing`` workers:

* the netlist, config, and mapper travel to each worker **once** (via
  the pool initializer — with the ``fork`` start method they are
  inherited copy-on-write, never pickled);
* per-pair tasks carry only the :class:`~repro.sta.timing.TimingViolation`
  and an index, and results are re-assembled **in submission order**, so
  a parallel run is bit-identical to a serial one;
* platforms without ``fork`` (or ``workers <= 1``, or a pool that fails
  to come up) fall back to the serial loop transparently.

Telemetry crosses the process boundary the same way results do: each
worker gets a fresh :class:`~repro.core.telemetry.Telemetry` in its
initializer, snapshots its counters around every pair, and ships the
*deltas* back alongside the ``PairResult``; the parent folds them in —
again in submission order — and records per-pair wall times plus a
pool-utilization event.  A pair that raises is returned as a
``PairResult`` carrying the error string (when
``ErrorLiftingConfig.keep_going`` is set, the default) so one poisoned
endpoint cannot abort the remaining pairs of a long phase-2 run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sta.timing import TimingViolation
    from .lifter import ErrorLifter, PairResult

#: Per-worker lifter, installed by :func:`_init_worker` after the fork.
_WORKER_LIFTER: Optional["ErrorLifter"] = None


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def _init_worker(netlist, config, mapper) -> None:
    """Build one lifter per worker process (netlist shipped once)."""
    global _WORKER_LIFTER
    import dataclasses

    from .lifter import ErrorLifter

    # A fresh telemetry per worker: its counter deltas travel back with
    # each task result; the parent's instance is never shared.
    telemetry.install(telemetry.Telemetry(run_id="lifting-worker"))
    # Workers must not recurse into their own pools.
    _WORKER_LIFTER = ErrorLifter(
        netlist, dataclasses.replace(config, workers=1), mapper
    )


def _lift_pair_safe(
    lifter: "ErrorLifter", violation: "TimingViolation"
) -> "PairResult":
    """Lift one pair; on ``keep_going``, convert a crash into a result."""
    try:
        return lifter.lift_pair(violation)
    except Exception as exc:  # noqa: BLE001 - the whole point is to survive
        if not getattr(lifter.config, "keep_going", True):
            raise
        from .lifter import PairResult
        from .models import ViolationKind

        kind = (
            ViolationKind.SETUP
            if violation.kind == "setup"
            else ViolationKind.HOLD
        )
        return PairResult(
            start=violation.start,
            end=violation.end,
            kind=kind,
            error=f"{type(exc).__name__}: {exc}",
        )


def _lift_one(
    task: Tuple[int, "TimingViolation"]
) -> Tuple[int, "PairResult", float, Dict[str, float]]:
    index, violation = task
    assert _WORKER_LIFTER is not None
    tele = telemetry.active()
    base = tele.snapshot() if tele is not None else {}
    t0 = time.perf_counter()
    result = _lift_pair_safe(_WORKER_LIFTER, violation)
    wall = time.perf_counter() - t0
    deltas = tele.counter_deltas(base) if tele is not None else {}
    return index, result, wall, deltas


def _record_pair(result: "PairResult", wall_s: float) -> None:
    """Parent-side trace records for one finished pair."""
    telemetry.add("lifting.pairs")
    telemetry.add("lifting.pair_wall_s", wall_s)
    telemetry.event(
        "lifting.pair",
        start=result.start,
        end=result.end,
        outcome=result.outcome.value,
        wall_s=round(wall_s, 6),
    )
    if result.error is not None:
        telemetry.add("lifting.pair_errors")
        telemetry.event(
            "lifting.pair_error",
            start=result.start,
            end=result.end,
            error=result.error,
        )


def _lift_serial(
    lifter: "ErrorLifter", violations: Sequence["TimingViolation"]
) -> List["PairResult"]:
    results: List["PairResult"] = []
    for violation in violations:
        t0 = time.perf_counter()
        result = _lift_pair_safe(lifter, violation)
        _record_pair(result, time.perf_counter() - t0)
        results.append(result)
    return results


def lift_pairs(
    lifter: "ErrorLifter",
    violations: Sequence["TimingViolation"],
    workers: int = 1,
) -> List["PairResult"]:
    """Lift every violation, sharded across ``workers`` processes.

    Results come back ordered like ``violations`` regardless of which
    worker finished first.  ``workers <= 0`` means "one per CPU" —
    lifting is CPU-bound, so extra processes beyond the core count only
    add fork/pickle overhead.  Serial execution (identical code path to
    ``[lifter.lift_pair(v) for v in violations]``) is used when the
    effective worker count is 1, when there is at most one pair to
    process, or when the platform lacks the ``fork`` start method.
    """
    violations = list(violations)
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    workers = min(workers, len(violations)) if violations else 1
    if workers <= 1 or not fork_available():
        return _lift_serial(lifter, violations)
    ctx = multiprocessing.get_context("fork")
    t_pool = time.perf_counter()
    try:
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(lifter.netlist, lifter.config, lifter.mapper),
        ) as pool:
            indexed = pool.map(_lift_one, list(enumerate(violations)))
    except (OSError, ValueError):  # pool could not start: degrade
        return _lift_serial(lifter, violations)
    elapsed = time.perf_counter() - t_pool
    indexed.sort(key=lambda item: item[0])
    tele = telemetry.active()
    busy = 0.0
    results: List["PairResult"] = []
    for _, result, wall, deltas in indexed:
        if tele is not None:
            tele.merge_counters(deltas)
        _record_pair(result, wall)
        busy += wall
        results.append(result)
    if tele is not None and elapsed > 0 and workers > 0:
        telemetry.event(
            "lifting.pool",
            workers=workers,
            elapsed_s=round(elapsed, 6),
            busy_s=round(busy, 6),
            utilization=round(busy / (elapsed * workers), 4),
        )
    return results
