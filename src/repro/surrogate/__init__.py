"""ML aging surrogate for fleet-scale triage (ROADMAP item 3).

The exact bottom-up pipeline (SP profiling -> charlib aging -> STA) is
the ground truth for one device, but proving a device *clean* costs a
full lifetime sweep — far too expensive per device once the campaign
layer samples fleets of thousands.  Following Genssler et al. (arXiv
2207.04134), workload-dependent aging is learnable from compact
features, so this package:

* generates labeled (features -> onset, slack) pairs by sweeping
  workload-skewed SP profiles through the exact pipeline
  (:mod:`dataset`, :mod:`oracle`),
* trains a dependency-light numpy ridge regressor with bit-reproducible
  JSON snapshots (:mod:`model`),
* validates held-out onset MAE / slack rank correlation / risky-tail
  recall and fails closed below the recall floor (:mod:`validate`), and
* triages sampled fleets: the surrogate-cleared cohort skips the exact
  pipeline entirely while the predicted-risky tail is re-verified
  exactly, byte-identical to the all-exact path (:mod:`triage`).
"""

from .dataset import (
    DATASET_SCHEMA,
    SurrogateDataset,
    device_sp_vector,
    generate_dataset,
    skewed_profile,
)
from .features import (
    FEATURE_SCHEMA,
    FleetFeaturizer,
    device_features,
    feature_names,
)
from .model import MODEL_SCHEMA, RidgeSurrogate, train_surrogate
from .oracle import ExactAgingOracle
from .triage import (
    TriageOutcome,
    TriagedDevice,
    accelerated_triage,
    profiled_fleet,
    run_surrogate_campaign,
    surrogate_device_prior,
    triage_fleet,
)
from .validate import (
    SurrogateValidationError,
    ValidationReport,
    calibrate_threshold,
    validate_model,
)

__all__ = [
    "DATASET_SCHEMA",
    "FEATURE_SCHEMA",
    "MODEL_SCHEMA",
    "ExactAgingOracle",
    "FleetFeaturizer",
    "RidgeSurrogate",
    "SurrogateDataset",
    "SurrogateValidationError",
    "TriageOutcome",
    "TriagedDevice",
    "ValidationReport",
    "accelerated_triage",
    "calibrate_threshold",
    "device_features",
    "device_sp_vector",
    "feature_names",
    "generate_dataset",
    "profiled_fleet",
    "run_surrogate_campaign",
    "skewed_profile",
    "surrogate_device_prior",
    "train_surrogate",
    "triage_fleet",
    "validate_model",
]
