"""The benchmark harness: canonical samples, recorder, regression gate.

Covers the `repro.bench` package end to end: canonical-JSON round
trips (byte-identical re-serialization, stable key order, fixed float
formatting), `repro bench compare` threshold edge cases (missing
metric, unit mismatch, exactly-at-threshold), recorder atomicity on
interrupted writes, and the CLI verbs the CI gate calls.
"""

import io
import json
import os
import pathlib

import pytest

from repro.bench import (
    BenchRecorder,
    Sample,
    atomic_write_text,
    canonical_dumps,
    compare_documents,
    compare_files,
    document_from_samples,
    parse_document,
    render_report,
)
from repro.cli import main


def _doc(*samples):
    return document_from_samples("t", list(samples))


# ---------------------------------------------------------------------
# Canonical JSON
# ---------------------------------------------------------------------
class TestCanonicalJson:
    def test_reserializing_parsed_json_is_byte_identical(self):
        doc = _doc(
            Sample("wall_time", 1.234567891234, "seconds",
                   {"workers": 4, "seed": 2024, "ratio": 0.1}),
            Sample("devices", 32, "devices", {"z": True, "a": None}),
        )
        text = canonical_dumps(doc)
        assert canonical_dumps(json.loads(text)) == text
        # ...and again, through a Sample round trip.
        parsed = parse_document(text)
        rebuilt = document_from_samples(
            parsed["benchmark"],
            [Sample.from_dict(s) for s in parsed["samples"]],
        )
        assert canonical_dumps(rebuilt) == text

    def test_keys_are_sorted(self):
        text = canonical_dumps({"b": 1, "a": {"z": 1, "y": 2}})
        assert text == '{"a":{"y":2,"z":1},"b":1}'

    def test_floats_normalize_to_nine_significant_digits(self):
        sample = Sample("m", 0.12345678912345, "s")
        assert sample.value == 0.123456789
        # Integers and bools survive untouched (type-preserving).
        assert Sample("m", 7, "s").value == 7
        assert canonical_dumps({"v": 2.0}) == '{"v":2.0}'
        assert canonical_dumps({"v": 2}) == '{"v":2}'

    def test_metadata_normalizes_recursively(self):
        sample = Sample("m", 1.0, "s", {"nested": [0.99999999999, 3]})
        assert sample.metadata["nested"][0] == 1.0

    def test_non_json_value_rejected(self):
        with pytest.raises(TypeError, match="non-canonical"):
            canonical_dumps({"v": object()})

    def test_parse_rejects_wrong_schema_and_shape(self):
        with pytest.raises(ValueError, match="schema"):
            parse_document('{"schema":99,"benchmark":"x","samples":[]}')
        with pytest.raises(ValueError, match="samples"):
            parse_document('{"schema":1}')
        with pytest.raises(ValueError, match="missing"):
            parse_document(
                '{"schema":1,"benchmark":"x","samples":[{"metric":"m"}]}'
            )


# ---------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------
class TestCompare:
    def test_identical_documents_pass(self):
        doc = _doc(Sample("wall_time", 1.0, "seconds", {"workers": 2}))
        result = compare_documents(doc, doc, threshold_pct=10.0)
        assert not result.failed
        assert result.compared == 1
        assert result.findings == []

    def test_slowdown_over_threshold_fails(self):
        base = _doc(Sample("wall_time", 1.0, "seconds"))
        cand = _doc(Sample("wall_time", 1.2, "seconds"))
        result = compare_documents(base, cand, threshold_pct=10.0)
        assert result.failed
        [finding] = result.findings
        assert finding.kind == "regression"

    def test_exactly_at_threshold_passes(self):
        base = _doc(Sample("wall_time", 1.0, "seconds"))
        cand = _doc(Sample("wall_time", 1.1, "seconds"))
        result = compare_documents(base, cand, threshold_pct=10.0)
        assert not result.failed
        # Strictly over the threshold regresses.
        worse = _doc(Sample("wall_time", 1.1000001, "seconds"))
        assert compare_documents(base, worse, threshold_pct=10.0).failed

    def test_bigger_is_better_direction(self):
        meta = {"bigger_is_better": True}
        base = _doc(Sample("throughput", 100.0, "events/s", meta))
        slower = _doc(Sample("throughput", 80.0, "events/s", meta))
        faster = _doc(Sample("throughput", 200.0, "events/s", meta))
        assert compare_documents(base, slower, 10.0).failed
        assert not compare_documents(base, faster, 10.0).failed

    def test_missing_metric_fails(self):
        base = _doc(
            Sample("wall_time", 1.0, "seconds"),
            Sample("devices", 32, "devices"),
        )
        cand = _doc(Sample("wall_time", 1.0, "seconds"))
        result = compare_documents(base, cand, threshold_pct=10.0)
        assert result.failed
        [finding] = result.findings
        assert finding.kind == "missing"
        assert finding.metric == "devices"

    def test_unit_mismatch_fails(self):
        base = _doc(Sample("wall_time", 1.0, "seconds"))
        cand = _doc(Sample("wall_time", 1000.0, "ms"))
        result = compare_documents(base, cand, threshold_pct=1e9)
        assert result.failed
        [finding] = result.findings
        assert finding.kind == "unit-mismatch"

    def test_new_candidate_metric_is_informational(self):
        base = _doc(Sample("wall_time", 1.0, "seconds"))
        cand = _doc(
            Sample("wall_time", 1.0, "seconds"),
            Sample("shiny", 1.0, "units"),
        )
        result = compare_documents(base, cand, threshold_pct=10.0)
        assert not result.failed
        [finding] = result.findings
        assert finding.kind == "new" and finding.severity == "info"

    def test_timing_warn_only_downgrades_timing_regressions(self):
        base = _doc(
            Sample("wall_time", 1.0, "seconds", {"timing": True}),
            Sample("devices", 32, "devices"),
        )
        slow = _doc(
            Sample("wall_time", 5.0, "seconds", {"timing": True}),
            Sample("devices", 32, "devices"),
        )
        gated = compare_documents(base, slow, 10.0, timing_warn_only=True)
        assert not gated.failed
        assert any(f.severity == "warn" for f in gated.findings)
        # Count regressions still hard-fail under the same flag.
        fewer = _doc(
            Sample("wall_time", 1.0, "seconds", {"timing": True}),
            Sample("devices", 2, "devices"),
        )
        assert compare_documents(
            base, fewer, 10.0, timing_warn_only=True
        ).failed is False  # devices has no direction: lower is "better"
        more = _doc(
            Sample("wall_time", 1.0, "seconds", {"timing": True}),
            Sample("devices", 64, "devices"),
        )
        assert compare_documents(
            base, more, 10.0, timing_warn_only=True
        ).failed

    def test_volatile_metadata_ignored_for_identity(self):
        base = _doc(Sample(
            "wall_time", 1.0, "seconds",
            {"workers": 2, "git_rev": "aaa", "timestamp": 1, "cpus": 64},
        ))
        cand = _doc(Sample(
            "wall_time", 1.0, "seconds",
            {"workers": 2, "git_rev": "bbb", "timestamp": 2, "cpus": 2},
        ))
        result = compare_documents(base, cand, threshold_pct=10.0)
        assert result.compared == 1 and not result.failed
        # Identity metadata still splits samples.
        other = _doc(Sample("wall_time", 1.0, "seconds", {"workers": 4}))
        assert compare_documents(base, other, threshold_pct=10.0).failed

    def test_zero_baseline_regression(self):
        base = _doc(Sample("errors", 0, "errors"))
        cand = _doc(Sample("errors", 1, "errors"))
        assert compare_documents(base, cand, threshold_pct=50.0).failed


# ---------------------------------------------------------------------
# Recorder + atomic writes
# ---------------------------------------------------------------------
class TestRecorder:
    def _recorder(self, tmp_path):
        return BenchRecorder(
            results_dir=tmp_path / "deep" / "results",
            json_dir=tmp_path,
            common_metadata={"git_rev": "test", "timestamp": 0,
                             "cpus": 1, "smoke": True},
        )

    def test_table_publishes_both_artifacts(self, tmp_path, capsys):
        rec = self._recorder(tmp_path)
        rec.sample("demo", "wall_time", 1.5, "seconds", workers=2)
        rec.table("demo", "col | val\nx   | 1")
        table = (tmp_path / "deep" / "results" / "demo.txt").read_text()
        assert table == "col | val\nx   | 1\n"  # newline-terminated
        text = (tmp_path / "BENCH_demo.json").read_text()
        assert text.endswith("\n")
        doc = parse_document(text)
        assert doc["benchmark"] == "demo"
        [sample] = doc["samples"]
        assert sample["metadata"]["workers"] == 2
        assert sample["metadata"]["git_rev"] == "test"
        assert canonical_dumps(json.loads(text)) == text.rstrip("\n")

    def test_parent_directories_created(self, tmp_path):
        # Regression: mkdir(exist_ok=True) without parents failed on
        # fresh checkouts missing the results tree.
        rec = self._recorder(tmp_path)
        assert not (tmp_path / "deep").exists()
        rec.sample("demo", "m", 1, "u")
        rec.table("demo", "t")
        assert (tmp_path / "deep" / "results" / "demo.txt").exists()

    def test_interrupted_write_leaves_no_partial_file(self, tmp_path,
                                                      monkeypatch):
        target = tmp_path / "sub" / "out.txt"
        atomic_write_text(target, "original")

        def boom(src, dst):
            raise OSError("simulated crash mid-publish")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated"):
            atomic_write_text(target, "replacement")
        monkeypatch.undo()
        # The published file is intact and no temp litter remains.
        assert target.read_text() == "original\n"
        assert [p.name for p in target.parent.iterdir()] == ["out.txt"]

    def test_flush_all_publishes_tableless_benchmarks(self, tmp_path):
        rec = self._recorder(tmp_path)
        rec.sample("orphan", "m", 1, "u")
        rec.table("done", "t")
        paths = rec.flush_all()
        assert [p.name for p in paths] == ["BENCH_orphan.json"]
        assert (tmp_path / "BENCH_orphan.json").exists()


# ---------------------------------------------------------------------
# CLI verbs (the CI gate's entry points)
# ---------------------------------------------------------------------
class TestBenchCli:
    def _write(self, path: pathlib.Path, *samples):
        atomic_write_text(path, canonical_dumps(_doc(*samples)))

    def test_compare_zero_on_identical_nonzero_on_slowdown(self, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        self._write(base, Sample("wall_time", 1.0, "seconds"))
        self._write(cand, Sample("wall_time", 1.0, "seconds"))
        out = io.StringIO()
        assert main(
            ["bench", "compare", str(base), str(cand)], out=out
        ) == 0
        self._write(cand, Sample("wall_time", 2.0, "seconds"))
        out = io.StringIO()
        assert main(
            ["bench", "compare", str(base), str(cand), "--threshold", "25"],
            out=out,
        ) == 1
        assert "regression" in out.getvalue()

    def test_compare_timing_warn_only_flag(self, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        self._write(base, Sample("wall_time", 1.0, "seconds",
                                 {"timing": True}))
        self._write(cand, Sample("wall_time", 9.0, "seconds",
                                 {"timing": True}))
        out = io.StringIO()
        assert main(
            ["bench", "compare", str(base), str(cand),
             "--timing-warn-only"], out=out,
        ) == 0
        assert "WARN" in out.getvalue()

    def test_compare_invalid_document_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = tmp_path / "good.json"
        self._write(good, Sample("m", 1, "u"))
        assert main(
            ["bench", "compare", str(bad), str(good)], out=io.StringIO()
        ) == 2

    def test_compare_missing_baseline_names_role_path_remedy(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "BENCH_gone.json"
        cand = tmp_path / "cand.json"
        self._write(cand, Sample("m", 1, "u"))
        code = main(
            ["bench", "compare", str(missing), str(cand)],
            out=io.StringIO(),
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "baseline benchmark document" in err
        assert str(missing) in err
        assert "re-record the benchmark" in err
        assert "Traceback" not in err

    def test_compare_missing_candidate_names_role_path_remedy(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        self._write(base, Sample("m", 1, "u"))
        missing = tmp_path / "BENCH_never_ran.json"
        code = main(
            ["bench", "compare", str(base), str(missing)],
            out=io.StringIO(),
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "candidate benchmark document" in err
        assert str(missing) in err
        assert "pytest benchmarks/" in err

    def test_compare_schema_mismatch_is_actionable(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        base.write_text('{"schema": 99, "benchmark": "x", "samples": []}')
        cand = tmp_path / "cand.json"
        self._write(cand, Sample("m", 1, "u"))
        code = main(
            ["bench", "compare", str(base), str(cand)],
            out=io.StringIO(),
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "not comparable" in err
        assert str(base) in err
        assert "Traceback" not in err

    def test_compare_files_raises_typed_error(self, tmp_path):
        from repro.bench import BenchCompareError

        cand = tmp_path / "cand.json"
        self._write(cand, Sample("m", 1, "u"))
        with pytest.raises(BenchCompareError, match="baseline"):
            compare_files(tmp_path / "nope.json", cand)

    def test_report_renders_markdown(self, tmp_path):
        doc = tmp_path / "BENCH_demo.json"
        self._write(doc, Sample("wall_time", 1.5, "seconds",
                                {"workers": 2, "git_rev": "abc"}))
        out = io.StringIO()
        assert main(["bench", "report", str(doc)], out=out) == 0
        text = out.getvalue()
        assert "# Benchmark trajectory" in text
        assert "wall_time" in text and "workers=2" in text
        # The library entry point agrees with the CLI.
        assert render_report([doc]) in text
