"""Embench-style benchmark programs and operand-stream capture."""

from .programs import REPRESENTATIVE, WORKLOADS, Workload
from .streams import collect_operand_streams, collect_unit_streams

__all__ = [
    "REPRESENTATIVE",
    "WORKLOADS",
    "Workload",
    "collect_operand_streams",
    "collect_unit_streams",
]
