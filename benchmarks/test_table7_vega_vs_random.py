"""Table 7 — Vega-generated vs random test suites.

The baseline generates suites "in the style and quantity" of Vega's:
one random instruction with random operands per test case.  Ten random
suites per configuration are averaged, as in the paper.

Paper shape: Vega detects (nearly) everything; random is weak on the
ALU (~50%) and on the FPU with C held at 0 (~35%), but becomes
competitive on the FPU when C is 1 or random — while never offering
Vega's ability to *prove* certain failures impossible.
"""

from repro.baselines.random_tests import random_suite
from repro.lifting.models import CMode

RANDOM_RUNS = 10


def test_table7_vega_vs_random(ctx, benchmark, recorder):
    rows = ["Unit | FM | Vega% | Random% | RndStall%"]
    results = {}
    for unit_name in ("alu", "fpu"):
        unit = ctx.unit(unit_name)
        for mode in (CMode.ZERO, CMode.ONE, CMode.RANDOM):
            vega = unit.vega_detection_rate(mode)
            baseline = unit.random_detection_rate(mode, runs=RANDOM_RUNS)
            results[(unit_name, mode)] = (vega, baseline.detected_pct)
            rows.append(
                f"{unit_name.upper():4s} | {mode.value:2s} | "
                f"{vega:5.1f} | {baseline.detected_pct:5.1f} | "
                f"{baseline.stalled_pct:5.1f}"
            )
            recorder.sample(
                "table7_vega_vs_random", "vega_detection_rate", vega,
                "percent", unit=unit_name, c_mode=mode.value,
                bigger_is_better=True,
            )
            recorder.sample(
                "table7_vega_vs_random", "random_detection_rate",
                baseline.detected_pct, "percent", unit=unit_name,
                c_mode=mode.value, runs=RANDOM_RUNS,
                bigger_is_better=True,
            )
    recorder.table("table7_vega_vs_random", "\n".join(rows))

    # Vega is (near-)perfect on the ALU and beats random there.
    for mode in (CMode.ZERO, CMode.ONE, CMode.RANDOM):
        vega, rand = results[("alu", mode)]
        assert vega >= 90.0
        assert vega >= rand
    # FPU: Vega detects the large majority in every mode.
    for mode in (CMode.ZERO, CMode.ONE, CMode.RANDOM):
        vega, _ = results[("fpu", mode)]
        assert vega >= 80.0
    # Somewhere, random clearly trails Vega (the paper's headline gap).
    gaps = [results[key][0] - results[key][1] for key in results]
    assert max(gaps) >= 10.0

    # Benchmark: one random-suite evaluation against one failing ALU.
    unit = ctx.alu
    failing = unit.failing_netlists()[0]
    library = random_suite("alu", len(unit.suite(False).test_cases), seed=7)

    def run_once():
        return unit.run_suite_against(library, failing.netlist)

    result = benchmark(run_once)
    assert result is not None
