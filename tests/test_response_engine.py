"""Tests for the detection→response reconfiguration engine.

Pins the same contracts the campaign/adversary engines honour — policy
rows are pure functions of (netlist, profile, configs), byte-identical
across worker counts and across a resume after a mid-run kill — plus
per-policy sanity: derate pays frequency and nothing else, resynth is
proven exact, approximate is provably inexact but recovers lifetime by
deleting the aged critical path.
"""

import dataclasses

import pytest

from repro.adversary import generate_candidate
from repro.core.artifacts import ArtifactCache
from repro.core.config import AgingAnalysisConfig, ResponseConfig
from repro.cpu.alu_design import build_alu
from repro.response import ResponseEngine, ResponseReport
from repro.sim.parallel_profile import profile_workload_streams

AGING = AgingAnalysisConfig(clock_margin=0.01, max_paths_per_endpoint=50)

CONFIG = ResponseConfig(
    mission_years=8.0,
    age_grid=(1.0, 2.0, 4.0, 8.0),
    accuracy_samples=16,
    accuracy_depth=3,
    workers=1,
)


@pytest.fixture(scope="module")
def alu_netlist():
    return build_alu()


@pytest.fixture(scope="module")
def operands(alu_netlist):
    ports = [(p.name, p.width) for p in alu_netlist.input_ports()]
    return generate_candidate(ports, 48, 0, 3)  # uniform-mode stream


@pytest.fixture(scope="module")
def profile(alu_netlist, operands):
    return profile_workload_streams(
        alu_netlist, {"mission": operands}, lanes=16
    )


def build_engine(alu_netlist, profile, operands, cache=None, **overrides):
    config = dataclasses.replace(CONFIG, **overrides)
    return ResponseEngine(
        alu_netlist,
        "alu",
        profile,
        aging=AGING,
        config=config,
        cache=cache,
        operands=operands,
    )


@pytest.fixture(scope="module")
def report(alu_netlist, profile, operands):
    return build_engine(alu_netlist, profile, operands).evaluate()


class TestPolicySanity:
    def test_baseline_violation_found(self, report):
        assert report.baseline_onset_years is not None
        assert report.baseline_onset_years <= CONFIG.age_grid[-1]
        assert report.victim_end is not None
        assert report.victim_kind == "setup"
        assert [row["policy"] for row in report.policies] == [
            "derate", "resynth", "approximate",
        ]

    def test_derate_pays_frequency_only(self, report):
        row = next(r for r in report.policies if r["policy"] == "derate")
        assert row["applicable"]
        assert row["frequency_cost_pct"] > 0.0
        assert row["accuracy_cost_pct"] == 0.0
        assert row["area_delta_cells"] == 0
        assert row["equivalent"] is True
        assert row["recovered_years"] >= 0.0

    def test_resynth_is_proven_exact(self, report):
        row = next(r for r in report.policies if r["policy"] == "resynth")
        assert row["applicable"]
        assert row["equivalent"] is True
        assert row["area_delta_cells"] > 0
        assert row["frequency_cost_pct"] == 0.0
        assert row["recovered_years"] >= 0.0

    def test_approximate_is_inexact_but_recovers(self, report):
        row = next(
            r for r in report.policies if r["policy"] == "approximate"
        )
        assert row["applicable"]
        assert row["equivalent"] is False
        assert row["area_delta_cells"] < 0
        # Removing the aged critical path must not make things worse.
        assert row["recovered_years"] >= 0.0

    def test_round_trip(self, report):
        assert (
            ResponseReport.from_json(report.to_json()).to_json()
            == report.to_json()
        )

    def test_summary_is_greppable(self, report):
        text = report.summary()
        assert "response: alu" in text
        assert "derate" in text and "approximate" in text


class TestDeterminism:
    def test_worker_invariance(
        self, alu_netlist, profile, operands, report
    ):
        sharded = build_engine(
            alu_netlist, profile, operands, workers=2
        ).evaluate()
        assert sharded.to_json() == report.to_json()

    def test_resume_after_kill(
        self, alu_netlist, profile, operands, report, tmp_path
    ):
        cache = ArtifactCache(tmp_path / "cache")
        dying = build_engine(alu_netlist, profile, operands, cache=cache)
        original = dying._eval_approximate

        def explode(*args, **kwargs):
            raise RuntimeError("killed mid-policy")

        dying._eval_approximate = explode
        with pytest.raises(RuntimeError, match="killed mid-policy"):
            dying.evaluate()

        revived = build_engine(alu_netlist, profile, operands, cache=cache)
        resumed = revived.evaluate(resume=True)
        assert resumed.to_json() == report.to_json()
        # Baseline, derate, and resynth completed before the kill and
        # must come back from checkpoints, not be recomputed.
        assert "baseline" in revived.resumed_policies
        assert "derate" in revived.resumed_policies
        assert "resynth" in revived.resumed_policies
        assert "approximate" not in revived.resumed_policies

    def test_response_key_ignores_workers(
        self, alu_netlist, profile, operands
    ):
        one = build_engine(alu_netlist, profile, operands, workers=1)
        two = build_engine(alu_netlist, profile, operands, workers=2)
        assert one.response_key() == two.response_key()
        other_seed = build_engine(
            alu_netlist, profile, operands, seed=99
        )
        assert other_seed.response_key() != one.response_key()
