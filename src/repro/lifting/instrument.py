"""Failure-model instrumentation of netlists (§3.3.2).

Two modes, exactly as the paper describes:

* :func:`make_failing_netlist` rewires the *real* capture flop through
  the failure model, producing a standalone "failing netlist" — a
  circuit-level failure model usable in simulation (our Table 6/7
  co-simulation) or exportable as Verilog for external tools.

* :func:`instrument_for_cover` leaves the original circuit untouched
  and instead builds a *shadow replica* of everything the capture flop
  can influence, feeds the replica's copy of the flop from the failure
  model, and returns the original/shadow output pairs whose mismatch is
  the ``cover property`` the BMC must reach.

* :func:`make_failing_netlist_multi` attaches *many* failure models to
  one clone, each behind a per-model 1-bit select port — the packed
  campaign drives each select with a constant bit-plane mask, so one
  packed gate-sim pass evaluates every model on its own plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.netlist import Instance, Net, Netlist
from .models import CMode, EdgeQualifier, FailureModel, ViolationKind

#: Name of the extra input port carrying a free-running wrong value in
#: CMode.RANDOM failing netlists.
RANDOM_C_PORT = "fm_c"


class InstrumentationError(Exception):
    """Raised when a model cannot be attached to the given netlist."""


def _c_net(netlist: Netlist, model: FailureModel) -> Net:
    """The net carrying the wrong value C."""
    if model.c_mode is CMode.RANDOM:
        if RANDOM_C_PORT in netlist.ports:
            return netlist.ports[RANDOM_C_PORT].bit(0)
        return netlist.add_input_port(RANDOM_C_PORT).bit(0)
    net = netlist.add_net(f"fm_c_{model.label}")
    tie = "TIE1" if model.c_mode is CMode.ONE else "TIE0"
    netlist.add_instance(tie, {"Y": net}, name=f"fm_tie_{model.label}")
    return net


def _build_trigger(
    netlist: Netlist, model: FailureModel, x: Instance
) -> Net:
    """Net that is 1 in cycles where the violation corrupts Y.

    Setup: compares X(t) with X(t-1) via a history flop.  Hold:
    compares X(t) with X(t+1), i.e. X's current D input (§3.3.2 and
    Figure 6: "X(t+1) is derived from the input of X").
    """
    label = model.label
    x_q = x.output_net
    if model.kind is ViolationKind.SETUP:
        hist_q = netlist.add_net(f"fm_hist_{label}")
        netlist.add_instance(
            "DFF", {"D": x_q, "Q": hist_q}, name=f"fm_histdff_{label}",
            init=x.init,
        )
        previous = hist_q
        current = x_q
    else:
        previous = x_q          # X(t)
        current = x.pins["D"]   # X(t+1)

    trigger = netlist.add_net(f"fm_trig_{label}")
    if model.edge is EdgeQualifier.ANY:
        # changed = previous XOR current
        netlist.add_instance(
            "XOR2", {"A": previous, "B": current, "Y": trigger},
            name=f"fm_xor_{label}",
        )
    else:
        inv = netlist.add_net(f"fm_inv_{label}")
        if model.edge is EdgeQualifier.RISING:
            # ~previous & current
            netlist.add_instance(
                "INV", {"A": previous, "Y": inv}, name=f"fm_invc_{label}"
            )
            netlist.add_instance(
                "AND2", {"A": inv, "B": current, "Y": trigger},
                name=f"fm_and_{label}",
            )
        else:
            # previous & ~current
            netlist.add_instance(
                "INV", {"A": current, "Y": inv}, name=f"fm_invc_{label}"
            )
            netlist.add_instance(
                "AND2", {"A": previous, "B": inv, "Y": trigger},
                name=f"fm_and_{label}",
            )
    return trigger


def _model_output(
    netlist: Netlist,
    model: FailureModel,
    x: Instance,
    original_d: Net,
) -> Net:
    """Build the failure model and return the corrupted D net for Y."""
    c_net = _c_net(netlist, model)
    if model.is_self_loop:
        # Metastable: Y always samples C (§3.3.1 special case).
        return c_net
    trigger = _build_trigger(netlist, model, x)
    out = netlist.add_net(f"fm_out_{model.label}")
    # MUX2: S=1 selects B.  trigger -> C, else original D.
    netlist.add_instance(
        "MUX2",
        {"A": original_d, "B": c_net, "S": trigger, "Y": out},
        name=f"fm_mux_{model.label}",
    )
    return out


@dataclass
class FailingNetlist:
    """A standalone circuit-level failure model (§3.3.2, output ❹)."""

    netlist: Netlist
    model: FailureModel

    def to_verilog(self) -> str:
        from ..netlist.verilog import netlist_to_verilog

        return netlist_to_verilog(self.netlist)


def make_failing_netlist(
    netlist: Netlist, model: FailureModel
) -> FailingNetlist:
    """Clone ``netlist`` and wire the capture flop through the model.

    For :class:`CMode.RANDOM`, the clone gains a 1-bit input port
    ``fm_c`` that the simulator drives with a fresh random value each
    cycle.
    """
    clone = netlist.clone(f"{netlist.name}__fail_{model.label}")
    x = _find_dff(clone, model.start)
    y = _find_dff(clone, model.end)
    original_d = y.pins["D"]
    corrupted = _model_output(clone, model, x, original_d)
    clone.rewire_input(y, "D", corrupted)
    clone.validate()
    return FailingNetlist(netlist=clone, model=model)


@dataclass
class PackedFailingNetlist:
    """Many failure models on one clone, one select port per model.

    Each model's corruption mux is gated by ``trigger AND fm_sel_<label>``
    (for metastable self-loops, by the select alone).  Driving select k
    with the constant plane mask ``1 << k`` in a packed simulation makes
    model k corrupt only bit-plane k: every other plane sees the mux as
    identity, so plane k's values are bit-identical to a single-model
    :func:`make_failing_netlist` simulation of that model — including
    across model interactions (a model whose trigger taps a net another
    model rewired reads the rewired mux output, which on its own plane
    equals the original net because the other select bit is 0 there).
    """

    netlist: Netlist
    models: List[FailureModel]
    #: model label -> name of its 1-bit select input port.
    select_ports: Dict[str, str]
    #: shared ``fm_c`` input port name, present iff any model is RANDOM.
    random_port: Optional[str] = None


def make_failing_netlist_multi(
    netlist: Netlist, models: Sequence[FailureModel]
) -> PackedFailingNetlist:
    """Clone ``netlist`` and attach every model behind its select port.

    Models sharing an endpoint chain their muxes in catalogue order;
    because each mux is select-gated the chain is order-independent per
    plane.  All RANDOM-mode models share the single ``fm_c`` port —
    the packed driver separates them by plane, one RNG stream per
    plane, exactly replicating each serial backend's ``fm_c`` draws.
    """
    models = list(models)
    labels = [model.label for model in models]
    if len(set(labels)) != len(labels):
        raise InstrumentationError(
            f"duplicate failure-model labels in packed group: {labels}"
        )
    clone = netlist.clone(f"{netlist.name}__fail_packed_{len(models)}")
    select_ports: Dict[str, str] = {}
    random_port: Optional[str] = None
    for model in models:
        x = _find_dff(clone, model.start)
        y = _find_dff(clone, model.end)
        sel_name = f"fm_sel_{model.label}"
        sel = clone.add_input_port(sel_name).bit(0)
        select_ports[model.label] = sel_name
        c_net = _c_net(clone, model)
        if model.c_mode is CMode.RANDOM:
            random_port = RANDOM_C_PORT
        if model.is_self_loop:
            # Metastable: the single-model netlist hard-wires Y's D to
            # C; here the select alone steers the mux.
            gate = sel
        else:
            trigger = _build_trigger(clone, model, x)
            gate = clone.add_net(f"fm_gate_{model.label}")
            clone.add_instance(
                "AND2",
                {"A": trigger, "B": sel, "Y": gate},
                name=f"fm_gand_{model.label}",
            )
        original_d = y.pins["D"]
        out = clone.add_net(f"fm_out_{model.label}")
        clone.add_instance(
            "MUX2",
            {"A": original_d, "B": c_net, "S": gate, "Y": out},
            name=f"fm_mux_{model.label}",
        )
        clone.rewire_input(y, "D", out)
    clone.validate()
    return PackedFailingNetlist(
        netlist=clone,
        models=models,
        select_ports=select_ports,
        random_port=random_port,
    )


@dataclass
class CoverInstrumentation:
    """Shadow-replica instrumentation ready for the BMC (§3.3.2, ❺).

    ``output_pairs`` lists (original, shadow) net names for every
    output bit the corrupted flop can influence — the support of the
    generated ``cover property``.
    """

    netlist: Netlist
    model: FailureModel
    output_pairs: List[Tuple[str, str]] = field(default_factory=list)
    shadow_suffix: str = "__s"

    def cover_property_text(self) -> str:
        """Human-readable rendering of the SV cover property."""
        terms = " || ".join(
            f"{orig} != {shadow}" for orig, shadow in self.output_pairs
        )
        return f"cover property (@(posedge clk) {terms});"


def instrument_for_cover(
    netlist: Netlist, model: FailureModel, suffix: str = "__s"
) -> CoverInstrumentation:
    """Build the shadow replica + failure model on a clone of ``netlist``.

    The replica copies every cell the capture flop Y can influence
    (including Y itself); shadow cells read original nets at the cone
    boundary.  Y's shadow samples the failure model's output instead of
    the true D, so original and shadow outputs diverge exactly when the
    modelled violation would corrupt an observable output.
    """
    clone = netlist.clone(f"{netlist.name}__cover_{model.label}")
    x = _find_dff(clone, model.start)
    y = _find_dff(clone, model.end)

    cone = clone.fanout_cone(y.output_net)
    cone.add(y)
    cone_names = {inst.name for inst in cone}

    # Shadow nets for every cone instance output.
    shadow_net: Dict[str, Net] = {}
    for inst in cone:
        out_name = inst.output_net.name
        shadow_net[out_name] = clone.add_net(out_name + suffix)

    # Shadow instances: inputs use shadow nets when the driver is in
    # the cone, the original nets otherwise.
    for inst in sorted(cone, key=lambda i: i.name):
        pins: Dict[str, Net] = {}
        for pin_name in inst.ctype.inputs:
            net = inst.pins[pin_name]
            pins[pin_name] = shadow_net.get(net.name, net)
        pins[inst.ctype.output] = shadow_net[inst.output_net.name]
        clone.add_instance(
            inst.ctype.name, pins, name=inst.name + suffix, init=inst.init
        )

    # The failure model drives the shadow Y's D pin.
    original_d = y.pins["D"]
    corrupted = _model_output(clone, model, x, original_d)
    shadow_y = clone.instances[y.name + suffix]
    clone.rewire_input(shadow_y, "D", corrupted)

    # Output pairs: every output-port bit whose driver lies in the cone
    # (the driver's output net *is* the port net, so the shadow map is
    # keyed directly by the port-net name).
    unique_pairs: List[Tuple[str, str]] = []
    for port in netlist.output_ports():
        for net in port.nets:
            clone_net = clone.nets[net.name]
            if clone_net.driver is None:
                continue
            if clone_net.driver[0].name in cone_names:
                unique_pairs.append((net.name, shadow_net[net.name].name))
    if not unique_pairs:
        raise InstrumentationError(
            f"violation endpoint {model.end!r} cannot influence any "
            "module output"
        )
    clone.validate()
    return CoverInstrumentation(
        netlist=clone,
        model=model,
        output_pairs=unique_pairs,
        shadow_suffix=suffix,
    )


def _find_dff(netlist: Netlist, name: str) -> Instance:
    try:
        inst = netlist.instances[name]
    except KeyError:
        raise InstrumentationError(f"no instance named {name!r}") from None
    if not inst.ctype.is_seq:
        raise InstrumentationError(
            f"{name!r} is a {inst.ctype.name}, not a flip-flop"
        )
    return inst
