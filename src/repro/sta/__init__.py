"""Static timing analysis: timing graph, clock tree, aging-aware STA."""

from .aging_sta import AgingAwareSta, AgingStaResult, delay_increase_histogram
from .clocktree import ClockBuffer, ClockTree
from .report import format_path, report_timing
from .timing import (
    DelayModel,
    StaReport,
    StaticTimingAnalyzer,
    TimingViolation,
)

__all__ = [
    "AgingAwareSta",
    "AgingStaResult",
    "delay_increase_histogram",
    "ClockBuffer",
    "format_path",
    "report_timing",
    "ClockTree",
    "DelayModel",
    "StaReport",
    "StaticTimingAnalyzer",
    "TimingViolation",
]
