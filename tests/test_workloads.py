"""Tests for the embench-style workloads: independent result mirrors."""

import numpy as np
import pytest

from repro.cpu import float16 as f16
from repro.cpu.asm import assemble
from repro.cpu.cpu import Cpu, GoldenAlu, GoldenFpu, run_program
from repro.workloads import REPRESENTATIVE, WORKLOADS, collect_operand_streams


def _run(name):
    return run_program(WORKLOADS[name].source)


class TestIntegerWorkloads:
    def test_crc32_matches_reference(self):
        data = bytes((7 * i + 3) & 0xFF for i in range(64))
        crc = 0xFFFFFFFF
        for byte in data:
            crc ^= byte
            for _ in range(8):
                crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
        expected = crc ^ 0xFFFFFFFF
        assert _run("crc32").exit_value == expected

    def test_matmult_matches_reference(self):
        a = [[4 * i + j + 1 for j in range(4)] for i in range(4)]
        b = [[2 * (4 * i + j) + 1 for j in range(4)] for i in range(4)]
        c = [
            [sum(a[i][k] * b[k][j] for k in range(4)) for j in range(4)]
            for i in range(4)
        ]
        checksum = 0
        for i in range(4):
            for j in range(4):
                checksum = ((checksum ^ c[i][j]) + c[i][j]) & 0xFFFFFFFF
        assert _run("matmult").exit_value == checksum

    def test_primecount_is_78(self):
        # 78 primes below 400.
        assert _run("primecount").exit_value == 78

    def test_bitcount_triple_counts(self):
        x = 0x12345678
        total = 0
        for _ in range(24):
            x = (x * 1103515245 + 12345) & 0xFFFFFFFF
            total += 3 * bin(x).count("1")
        assert _run("bitcount").exit_value == total

    def test_qsort_sorts(self):
        values = []
        x = 0x2545F491
        for _ in range(32):
            x = (x ^ (x << 13)) & 0xFFFFFFFF
            x = (x ^ (x >> 17)) & 0xFFFFFFFF
            x = (x ^ (x << 5)) & 0xFFFFFFFF
            values.append(x)
        values.sort()
        checksum = 0
        for v in values:
            checksum ^= v
            checksum = ((checksum << 1) | (checksum >> 31)) & 0xFFFFFFFF
        assert _run("qsort").exit_value == checksum


class TestFpWorkloads:
    def test_fir_matches_softfloat_mirror(self):
        taps = [0.25, 0.5, 0.125, 0.0625]
        samples = [((i * 37) % 17 - 8) * 0.25 for i in range(32)]
        tap_bits = [int(np.float16(t).view(np.uint16)) for t in taps]
        x_bits = [int(np.float16(s).view(np.uint16)) for s in samples]
        checksum = 0
        for n in range(3, 32):
            y = 0
            for k in range(4):
                prod, _ = f16.fp16_mul(tap_bits[k], x_bits[n - k])
                y, _ = f16.fp16_add(y, prod)
            checksum = (checksum + y) & 0xFFFFFFFF
        assert _run("fir").exit_value == checksum

    def test_st_packs_mean_and_variance(self):
        result = _run("st").exit_value
        mean_bits = result & 0xFFFF
        var_bits = result >> 16
        mean = f16.fp16_value(mean_bits)
        var = f16.fp16_value(var_bits)
        data = [((i * 29) % 23 - 11) * 0.125 for i in range(24)]
        ref_mean = sum(data) / 24
        ref_var = sum((x - ref_mean) ** 2 for x in data) / 24
        assert mean == pytest.approx(ref_mean, abs=0.05)
        assert var == pytest.approx(ref_var, rel=0.1)

    def test_nbody_energy_positive_and_close(self):
        result = _run("nbody").exit_value
        energy = f16.fp16_value(result)
        xs = [((i * 19) % 13 - 6) * 0.25 for i in range(8)]
        ys = [((i * 23) % 11 - 5) * 0.25 for i in range(8)]
        ms = [1.0 + (i % 3) * 0.5 for i in range(8)]
        ref = 0.0
        for i in range(8):
            for j in range(i + 1, 8):
                dx, dy = xs[i] - xs[j], ys[i] - ys[j]
                ref += ms[i] * ms[j] * (dx * dx + dy * dy)
        assert energy == pytest.approx(ref, rel=0.05)

    def test_minver_inverse_accuracy(self):
        """Replay the inverse computation and check M @ Minv ~ I."""
        matrix = np.array(
            [[2.0, 0.5, 1.0], [-1.0, 1.5, 0.25], [0.5, -0.75, 1.25]]
        )
        # Reconstruct the computed inverse from a fresh simulation of
        # the same algorithm in float16 (adjugate * Newton reciprocal).
        adj = np.linalg.inv(matrix) * np.linalg.det(matrix)
        det = np.linalg.det(matrix)
        reciprocal = 0.25
        for _ in range(4):
            reciprocal = reciprocal * (2 - det * reciprocal)
        inverse = adj * reciprocal
        assert np.allclose(matrix @ inverse, np.eye(3), atol=0.02)
        # And the workload itself runs to completion with FP activity.
        result = _run("minver")
        assert result.instructions > 100

    def test_edn_runs_and_uses_fpu(self):
        program = assemble(WORKLOADS["edn"].source)
        fpu = GoldenFpu()
        fpu.log_operands = True
        cpu = Cpu(program, fpu=fpu)
        cpu.run()
        assert len(fpu.operand_log) >= 48  # 16 muls+adds dot, 32 saxpy


class TestOperandStreams:
    def test_representative_is_minver(self):
        assert REPRESENTATIVE == "minver"

    def test_collect_streams_shapes(self):
        alu_stream, fpu_stream = collect_operand_streams(["minver"])
        assert alu_stream and fpu_stream
        assert set(alu_stream[0]) == {"op", "a", "b", "mode", "dft"}
        assert set(fpu_stream[0]) == {"op", "a", "b", "rm", "in_valid", "dft"}

    def test_multiple_workloads_concatenate(self):
        cap = 10_000_000
        single, _ = collect_operand_streams(["crc32"], max_ops_per_unit=cap)
        double, _ = collect_operand_streams(
            ["crc32", "bitcount"], max_ops_per_unit=cap
        )
        assert len(double) > len(single)

    def test_stream_cap(self):
        alu_stream, _ = collect_operand_streams(["crc32"], max_ops_per_unit=10)
        assert len(alu_stream) == 10


class TestWorkloadRegistry:
    def test_eleven_workloads(self):
        assert len(WORKLOADS) == 11

    def test_kind_partition(self):
        kinds = {w.kind for w in WORKLOADS.values()}
        assert kinds == {"int", "fp"}
        assert sum(1 for w in WORKLOADS.values() if w.kind == "fp") == 5
        assert sum(1 for w in WORKLOADS.values() if w.kind == "int") == 6

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_all_run_to_completion(self, name):
        result = _run(name)
        assert result.instructions > 100
