"""Gate-level netlist data model.

A :class:`Netlist` is the directed cell/wire graph that every Vega phase
operates on: the simulator evaluates it, the STA walks its timing arcs,
the failure-model instrumentation rewrites it, and the BMC encodes it to
CNF.  Nets are scalar (single-bit); module ports group nets into ordered
buses so that ``a[1:0]`` style interfaces survive synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .cells import CellLibrary, CellType


class NetlistError(Exception):
    """Raised for structural problems: double drivers, loops, bad pins."""


@dataclass(eq=False)
class Net:
    """A single-bit wire.

    ``driver`` is ``(instance, pin)`` for cell-driven nets, ``None`` for
    primary inputs and dangling wires.  ``loads`` lists ``(instance,
    pin)`` sinks.
    """

    name: str
    driver: Optional[Tuple["Instance", str]] = None
    loads: List[Tuple["Instance", str]] = field(default_factory=list)
    is_input: bool = False
    is_clock: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name})"


@dataclass(eq=False)
class Instance:
    """One placed cell: a cell type plus pin-to-net connections."""

    name: str
    ctype: CellType
    pins: Dict[str, Net] = field(default_factory=dict)
    # Initial (post-reset) value of the output; meaningful for DFFs only.
    init: int = 0

    @property
    def output_net(self) -> Net:
        return self.pins[self.ctype.output]

    def input_nets(self) -> Tuple[Net, ...]:
        return tuple(self.pins[p] for p in self.ctype.inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self.name}:{self.ctype.name})"


@dataclass
class Port:
    """A module-level bus: an ordered list of nets, LSB first."""

    name: str
    nets: List[Net]
    direction: str  # "input" | "output"

    @property
    def width(self) -> int:
        return len(self.nets)

    def bit(self, index: int) -> Net:
        return self.nets[index]


class Netlist:
    """A synthesized module: ports, nets, and cell instances.

    The netlist is synchronous single-clock: every DFF is implicitly
    clocked by the module clock (modelled separately by
    :class:`repro.sta.clocktree.ClockTree` when skew matters).
    """

    def __init__(self, name: str, library: CellLibrary):
        self.name = name
        self.library = library
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}
        self.ports: Dict[str, Port] = {}
        self._uid = 0
        # Structural version counter: bumped by every mutation so that
        # derived caches (levelize order, compiled simulators) can be
        # invalidated without tracking individual edits.
        self._version = 0
        self._topo_cache: Optional[List[Instance]] = None
        self._topo_version = -1
        self._hash_cache: Optional[str] = None
        self._hash_version = -1
        self._validated_version = -1

    @property
    def version(self) -> int:
        """Monotonic counter of structural mutations (for cache keys)."""
        return self._version

    def structural_hash(self) -> str:
        """Content hash of the netlist's structure (hex sha256).

        Unlike :attr:`version` — an in-process identity counter — this
        digest depends only on the netlist's *content* (ports, nets,
        instances, pin wiring, init values, cell timing), so two
        processes that synthesize the same design derive the same key.
        It addresses the artifact cache: any structural edit changes the
        digest and orphans stale cached profiles/delay models.  Memoized
        per structural version.
        """
        if self._hash_cache is not None and self._hash_version == self._version:
            return self._hash_cache
        import hashlib

        h = hashlib.sha256()
        h.update(f"netlist {self.name}\n".encode())
        for port in sorted(self.ports.values(), key=lambda p: p.name):
            nets = ",".join(n.name for n in port.nets)
            h.update(f"port {port.name} {port.direction} [{nets}]\n".encode())
        for inst in sorted(self.instances.values(), key=lambda i: i.name):
            pins = ",".join(
                f"{pin}={net.name}" for pin, net in sorted(inst.pins.items())
            )
            cell = (
                f"{inst.ctype.name}:{inst.ctype.tmin!r}:{inst.ctype.tmax!r}"
            )
            h.update(
                f"inst {inst.name} {cell} init={inst.init} {pins}\n".encode()
            )
        digest = h.hexdigest()
        self._hash_cache = digest
        self._hash_version = self._version
        return digest

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        while True:
            self._uid += 1
            name = f"{prefix}{self._uid}"
            if name not in self.nets and name not in self.instances:
                return name

    def add_net(self, name: Optional[str] = None) -> Net:
        if name is None:
            name = self._fresh_name("n")
        if name in self.nets:
            raise NetlistError(f"net {name!r} already exists")
        net = Net(name=name)
        self.nets[name] = net
        self._version += 1
        return net

    def get_net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def add_input_port(self, name: str, width: int = 1) -> Port:
        return self._add_port(name, width, "input")

    def add_output_port(self, name: str, width: int = 1) -> Port:
        return self._add_port(name, width, "output")

    def _add_port(self, name: str, width: int, direction: str) -> Port:
        if name in self.ports:
            raise NetlistError(f"port {name!r} already exists")
        if width < 1:
            raise NetlistError("port width must be >= 1")
        nets = []
        for i in range(width):
            bit_name = name if width == 1 else f"{name}[{i}]"
            net = self.add_net(bit_name)
            net.is_input = direction == "input"
            nets.append(net)
        port = Port(name=name, nets=nets, direction=direction)
        self.ports[name] = port
        return port

    def add_instance(
        self,
        ctype_name: str,
        pins: Dict[str, Net],
        name: Optional[str] = None,
        init: int = 0,
    ) -> Instance:
        """Place one cell and hook up its pins.

        Output pins claim the driver slot of their net; a net with two
        drivers is rejected immediately.
        """
        ctype = self.library[ctype_name]
        if name is None:
            name = self._fresh_name(f"u_{ctype.name.lower()}_")
        if name in self.instances:
            raise NetlistError(f"instance {name!r} already exists")
        expected = set(ctype.inputs) | {ctype.output}
        if set(pins) != expected:
            raise NetlistError(
                f"{ctype.name} needs pins {sorted(expected)}, got {sorted(pins)}"
            )
        inst = Instance(name=name, ctype=ctype, pins=dict(pins), init=init)
        out_net = pins[ctype.output]
        if out_net.driver is not None:
            raise NetlistError(
                f"net {out_net.name!r} already driven by "
                f"{out_net.driver[0].name!r}"
            )
        if out_net.is_input:
            raise NetlistError(f"cannot drive input net {out_net.name!r}")
        out_net.driver = (inst, ctype.output)
        for pin_name in ctype.inputs:
            pins[pin_name].loads.append((inst, pin_name))
        self.instances[name] = inst
        self._version += 1
        return inst

    def remove_instance(self, name: str) -> None:
        inst = self.instances.pop(name)
        out = inst.output_net
        out.driver = None
        for pin_name in inst.ctype.inputs:
            net = inst.pins[pin_name]
            net.loads = [(i, p) for (i, p) in net.loads if i is not inst]
        self._version += 1

    def rewire_input(self, inst: Instance, pin: str, new_net: Net) -> None:
        """Reconnect one input pin of ``inst`` to ``new_net``."""
        if pin not in inst.ctype.inputs:
            raise NetlistError(f"{inst.name} has no input pin {pin!r}")
        old = inst.pins[pin]
        old.loads = [(i, p) for (i, p) in old.loads if not (i is inst and p == pin)]
        inst.pins[pin] = new_net
        new_net.loads.append((inst, pin))
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def input_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == "input"]

    def output_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == "output"]

    def dffs(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.ctype.is_seq]

    def combinational_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if not i.ctype.is_seq]

    def stats(self) -> Dict[str, int]:
        """Per-cell-type instance counts plus totals, for reporting."""
        counts: Dict[str, int] = {}
        for inst in self.instances.values():
            counts[inst.ctype.name] = counts.get(inst.ctype.name, 0) + 1
        counts["_cells"] = len(self.instances)
        counts["_nets"] = len(self.nets)
        counts["_dffs"] = len(self.dffs())
        return counts

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetlistError`.

        * every combinational input is driven (by a cell or a port),
        * every output port bit is driven,
        * the combinational core is acyclic.

        A successful validation is memoized per structural version, so
        constructing many simulators over the same (unmutated) netlist
        pays the structural walk once.
        """
        if self._validated_version == self._version:
            return
        for inst in self.instances.values():
            for pin_name in inst.ctype.inputs:
                net = inst.pins[pin_name]
                if net.driver is None and not net.is_input:
                    raise NetlistError(
                        f"net {net.name!r} feeding {inst.name}.{pin_name} "
                        "is undriven"
                    )
        for port in self.output_ports():
            for net in port.nets:
                if net.driver is None and not net.is_input:
                    raise NetlistError(
                        f"output bit {net.name!r} is undriven"
                    )
        self.levelize()  # raises on combinational loops
        self._validated_version = self._version

    def levelize(self) -> List[Instance]:
        """Topologically order combinational instances.

        DFF outputs and primary inputs are sources.  Raises on loops.
        The order is memoized per structural version — the simulator
        compiler, STA, and BMC unroller all call this on hot paths —
        and any mutation invalidates it.  A fresh list is returned each
        call so callers may mutate the netlist while iterating.
        """
        if self._topo_cache is not None and self._topo_version == self._version:
            return list(self._topo_cache)
        order = self._levelize_uncached()
        self._topo_cache = order
        self._topo_version = self._version
        return list(order)

    def _levelize_uncached(self) -> List[Instance]:
        order: List[Instance] = []
        # Remaining unseen combinational fanin count per instance.
        pending: Dict[str, int] = {}
        ready: List[Instance] = []
        for inst in self.instances.values():
            if inst.ctype.is_seq:
                continue
            n = 0
            for net in inst.input_nets():
                if net.driver is not None and not net.driver[0].ctype.is_seq:
                    n += 1
            pending[inst.name] = n
            if n == 0:
                ready.append(inst)
        while ready:
            inst = ready.pop()
            order.append(inst)
            for load_inst, _pin in inst.output_net.loads:
                if load_inst.ctype.is_seq:
                    continue
                pending[load_inst.name] -= 1
                if pending[load_inst.name] == 0:
                    ready.append(load_inst)
        if len(order) != len(pending):
            stuck = [n for n, c in pending.items() if c > 0]
            raise NetlistError(
                f"combinational loop involving {stuck[:5]} (+{len(stuck)} total)"
            )
        return order

    # ------------------------------------------------------------------
    # cones
    # ------------------------------------------------------------------
    def fanout_cone(self, start: Net) -> Set[Instance]:
        """All instances transitively reachable from ``start``.

        The walk crosses DFFs (their Q continues the cone), matching the
        shadow-replica construction of §3.3.2 which copies *all* cells
        that the violated endpoint can influence.
        """
        seen: Set[str] = set()
        cone: Set[Instance] = set()
        frontier: List[Net] = [start]
        seen_nets: Set[str] = {start.name}
        while frontier:
            net = frontier.pop()
            for inst, _pin in net.loads:
                if inst.name in seen:
                    continue
                seen.add(inst.name)
                cone.add(inst)
                out = inst.output_net
                if out.name not in seen_nets:
                    seen_nets.add(out.name)
                    frontier.append(out)
        return cone

    def fanin_cone(self, start: Net, stop_at_dff: bool = True) -> Set[Instance]:
        """All instances transitively driving ``start``."""
        cone: Set[Instance] = set()
        frontier: List[Net] = [start]
        seen_nets: Set[str] = {start.name}
        while frontier:
            net = frontier.pop()
            if net.driver is None:
                continue
            inst = net.driver[0]
            if inst in cone:
                continue
            cone.add(inst)
            if stop_at_dff and inst.ctype.is_seq:
                continue
            for in_net in inst.input_nets():
                if in_net.name not in seen_nets:
                    seen_nets.add(in_net.name)
                    frontier.append(in_net)
        return cone

    # ------------------------------------------------------------------
    # cloning
    # ------------------------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "Netlist":
        """Deep-copy the netlist (fresh Net/Instance objects)."""
        out = Netlist(name or self.name, self.library)
        out._uid = self._uid
        for net in self.nets.values():
            copy = out.add_net(net.name)
            copy.is_input = net.is_input
            copy.is_clock = net.is_clock
        for port in self.ports.values():
            out.ports[port.name] = Port(
                name=port.name,
                nets=[out.nets[n.name] for n in port.nets],
                direction=port.direction,
            )
        for inst in self.instances.values():
            out.add_instance(
                inst.ctype.name,
                {p: out.nets[n.name] for p, n in inst.pins.items()},
                name=inst.name,
                init=inst.init,
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name}: {len(self.instances)} cells, "
            f"{len(self.nets)} nets)"
        )
