"""The canonical benchmark sample model.

A :class:`Sample` is one measured quantity: ``metric`` names *what*
was measured, ``value``/``unit`` say how much, and ``metadata``
carries every identity-defining parameter of the measurement (device
count, workers, lanes, seed) plus provenance (git rev, timestamp).

Canonical JSON discipline:

* keys sorted, separators ``(",", ":")``, ASCII only;
* every float normalized to 9 significant digits **at construction**,
  so the parsed value re-serializes to the identical byte string;
* documents end with exactly one trailing newline on disk.

``canonical_dumps(json.loads(text)) == text`` holds for any document
this module wrote — the property the regression gate and the
content-addressed trajectory rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

#: Bumped on any incompatible change to the BENCH_*.json layout.
BENCH_SCHEMA = 1


def canon_value(value: Any) -> Any:
    """Normalize a JSON value for canonical serialization.

    Floats are rounded to 9 significant digits (and collapsed to int
    when integral within that precision is *not* applied — ``2.0``
    stays a float so the type round-trips).  Containers normalize
    recursively; dict keys must already be strings.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float(f"{value:.9g}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, Mapping):
        return {str(k): canon_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canon_value(v) for v in value]
    raise TypeError(f"non-canonical sample value: {value!r}")


def canonical_dumps(obj: Any) -> str:
    """Serialize ``obj`` as canonical JSON (no trailing newline)."""
    return json.dumps(
        canon_value(obj), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True,
    )


@dataclass(frozen=True)
class Sample:
    """One benchmark measurement.

    ``metadata`` keys that describe provenance rather than identity
    (``git_rev``, ``timestamp``, ``cpus``) are ignored when matching
    samples across runs — see :data:`repro.bench.compare.VOLATILE_KEYS`.
    Two conventional boolean keys steer the regression gate:

    * ``bigger_is_better`` — direction of goodness (default: smaller,
      i.e. the metric is a cost like wall time);
    * ``timing`` — the value is wall-clock-derived and therefore noisy
      on shared runners; ``compare --timing-warn-only`` downgrades its
      regressions to warnings.
    """

    metric: str
    value: float
    unit: str
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "value", canon_value(self.value))
        object.__setattr__(self, "metadata", canon_value(dict(self.metadata)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sample":
        return cls(
            metric=data["metric"],
            value=data["value"],
            unit=data["unit"],
            metadata=dict(data.get("metadata", {})),
        )


def document_from_samples(
    benchmark: str, samples: Sequence[Sample]
) -> Dict[str, Any]:
    """The BENCH_<name>.json document for one benchmark's samples."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "samples": [s.to_dict() for s in samples],
    }


def parse_document(text: str) -> Dict[str, Any]:
    """Parse and validate one BENCH_*.json document."""
    data = json.loads(text)
    if not isinstance(data, dict) or "samples" not in data:
        raise ValueError("not a BENCH document: missing 'samples'")
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unsupported bench schema {data.get('schema')!r} "
            f"(this build reads {BENCH_SCHEMA})"
        )
    for entry in data["samples"]:
        missing = {"metric", "value", "unit"} - set(entry)
        if missing:
            raise ValueError(f"sample missing {sorted(missing)}: {entry!r}")
    return data


def document_samples(data: Mapping[str, Any]) -> List[Sample]:
    return [Sample.from_dict(entry) for entry in data["samples"]]
