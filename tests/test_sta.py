"""Tests for static timing analysis, clock tree, and aging-aware STA."""

import pytest

from repro.aging.charlib import AgingTimingLibrary
from repro.aging.corners import TYPICAL_CORNER, WORST_CORNER
from repro.core.config import AgingAnalysisConfig
from repro.core.example import PAPER_TABLE1_SP, build_paper_adder
from repro.sim.probes import SPProfile
from repro.sta.aging_sta import AgingAwareSta, delay_increase_histogram
from repro.sta.clocktree import ClockTree
from repro.sta.timing import DelayModel, StaticTimingAnalyzer


def _paper_profile(adder):
    """Table 1's SP profile keyed by output-net names."""
    sp = {}
    for inst_name, value in PAPER_TABLE1_SP.items():
        sp[adder.instances[inst_name].output_net.name] = value
    # Input nets: assume balanced stimulus.
    for net in adder.nets.values():
        sp.setdefault(net.name, 0.5)
    return SPProfile(netlist_name=adder.name, sp=sp, samples=1000)


class TestFreshSta:
    def test_paper_example_longest_path(self, paper_adder):
        """§3.1: longest path d4->x7->x8->d10 accumulates 0.9 ns."""
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        analyzer.propagate()
        d_net = paper_adder.instances["d10"].pins["D"]
        assert analyzer.arrival_max(d_net.name) == pytest.approx(0.9)

    def test_paper_example_shortest_path(self, paper_adder):
        """§3.1: shortest path d1->x5->d9 has 0.2 ns minimum delay."""
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        analyzer.propagate()
        d_net = paper_adder.instances["d9"].pins["D"]
        assert analyzer.arrival_min(d_net.name) == pytest.approx(0.2)

    def test_fresh_design_meets_1ghz(self, paper_adder):
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        report = analyzer.check(period_ns=1.0)
        assert report.violations == []
        # Setup slack of the worst path: 1.0 - 0.06 - 0.9 = 0.04.
        assert report.wns_setup_ns == pytest.approx(0.04)
        # Hold slack: 0.2 - 0.03 = 0.17.
        assert report.wns_hold_ns == pytest.approx(0.17)

    def test_critical_delay(self, paper_adder):
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        assert analyzer.critical_delay() == pytest.approx(0.96)

    def test_too_fast_clock_creates_setup_violations(self, paper_adder):
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        report = analyzer.check(period_ns=0.9)
        setup = report.setup_violations()
        assert setup
        worst = min(setup, key=lambda v: v.slack)
        assert worst.start == "d4" or worst.start == "d3"
        assert worst.end == "d10"
        # The specific paper path must be among the violations.
        assert any(
            v.start == "d4" and v.cells == ("x7", "x8") for v in setup
        )

    def test_path_enumeration_counts_distinct_routes(self, paper_adder):
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        # At 0.9ns, required = 0.84; violating paths into d10 are the
        # four 3-cell routes (d1/d2 via a6, d3/d4 via x7) at 0.9.
        report = analyzer.check(period_ns=0.9)
        into_d10 = [v for v in report.setup_violations() if v.end == "d10"]
        assert len(into_d10) == 4
        starts = sorted(v.start for v in into_d10)
        assert starts == ["d1", "d2", "d3", "d4"]

    def test_artificial_hold_violation(self, paper_adder):
        """Pushing d9's capture clock late creates the §3.2 hold case."""
        model = DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        model.clock_late = {"d9": 0.2}  # 200 ps late capture clock
        analyzer = StaticTimingAnalyzer(paper_adder, model)
        report = analyzer.check(period_ns=1.0)
        hold = report.hold_violations()
        assert hold
        assert {v.endpoint_pair for v in hold} == {("d1", "d9"), ("d2", "d9")}

    def test_unique_endpoint_pairs_ordering(self, paper_adder):
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        report = analyzer.check(period_ns=0.9)
        pairs = report.unique_endpoint_pairs()
        assert len(pairs) == 4
        assert all(pair[1] == "d10" for pair in pairs)

    def test_representative_violations_one_per_pair(self, paper_adder):
        analyzer = StaticTimingAnalyzer(
            paper_adder, DelayModel.fresh(paper_adder, TYPICAL_CORNER)
        )
        report = analyzer.check(period_ns=0.9)
        reps = report.representative_violations()
        assert len(reps) == len(report.unique_endpoint_pairs())


class TestClockTree:
    def test_balanced_tree_zero_fresh_skew(self, paper_adder):
        tree = ClockTree.build(paper_adder, fanout_per_leaf=2)
        arrivals = tree.fresh_arrivals()
        assert len(set(arrivals.values())) == 1

    def test_every_dff_has_a_path(self, paper_adder):
        tree = ClockTree.build(paper_adder, fanout_per_leaf=2)
        assert set(tree.sink_paths) == {d.name for d in paper_adder.dffs()}

    def test_ungated_tree_keeps_skew_small_after_aging(self, paper_adder, paper_lib):
        tree = ClockTree.build(paper_adder, fanout_per_leaf=2)
        lib = AgingTimingLibrary.characterize(paper_lib)
        assert tree.max_phase_shift(lib) == pytest.approx(0.0, abs=1e-12)

    def test_gating_creates_phase_shift(self, paper_adder, paper_lib):
        gated = {"d9": 1.0}
        tree = ClockTree.build(paper_adder, fanout_per_leaf=1, gated_sinks=gated)
        lib = AgingTimingLibrary.characterize(paper_lib)
        shift = tree.max_phase_shift(lib)
        assert shift > 0.001  # > 1 ps of aging-induced skew

    def test_gated_buffer_sp_drops(self, paper_adder):
        gated = {d.name: 1.0 for d in paper_adder.dffs()}
        tree = ClockTree.build(paper_adder, fanout_per_leaf=2, gated_sinks=gated)
        assert all(buf.signal_probability == 0.0 for buf in tree.buffers)
        free = ClockTree.build(paper_adder, fanout_per_leaf=2)
        assert all(buf.signal_probability == 0.5 for buf in free.buffers)


class TestAgingAwareSta:
    def test_fresh_passes_aged_fails(self, paper_adder):
        """The §3.2.2 example: aging pushes d4->x7->x8->d10 past setup."""
        lib = AgingTimingLibrary.characterize(paper_adder.library)
        sta = AgingAwareSta(
            paper_adder,
            lib,
            config=AgingAnalysisConfig(clock_margin=0.042),
            corner=TYPICAL_CORNER,
        )
        result = sta.analyze(_paper_profile(paper_adder), clock_period_ns=1.0)
        assert result.fresh_report.violations == []
        setup = result.report.setup_violations()
        assert setup
        pairs = {v.endpoint_pair for v in setup}
        assert ("d4", "d10") in pairs

    def test_aged_path_delay_near_paper_value(self, paper_adder):
        """Paper: the aged long path accumulates ~0.946 ns."""
        lib = AgingTimingLibrary.characterize(paper_adder.library)
        sta = AgingAwareSta(paper_adder, lib, corner=TYPICAL_CORNER)
        model, _ = sta.aged_delay_model(_paper_profile(paper_adder))
        analyzer = StaticTimingAnalyzer(paper_adder, model)
        analyzer.propagate()
        d_net = paper_adder.instances["d10"].pins["D"]
        launch = model.clock_late["d4"]
        path_delay = analyzer.arrival_max(d_net.name) - launch
        assert 0.93 < path_delay < 0.97

    def test_delay_increase_distribution(self, paper_adder):
        lib = AgingTimingLibrary.characterize(paper_adder.library)
        sta = AgingAwareSta(paper_adder, lib, corner=TYPICAL_CORNER)
        _, increase = sta.aged_delay_model(_paper_profile(paper_adder))
        assert all(0.0 <= v < 0.10 for v in increase.values())
        # x7 (SP 0.13) is the most stressed cell in the paper's example.
        comb = {k: v for k, v in increase.items() if k.startswith(("x", "a"))}
        assert max(comb, key=comb.get) == "x7"

    def test_derive_period_leaves_margin(self, paper_adder):
        lib = AgingTimingLibrary.characterize(paper_adder.library)
        sta = AgingAwareSta(
            paper_adder,
            lib,
            config=AgingAnalysisConfig(clock_margin=0.03),
            corner=TYPICAL_CORNER,
        )
        assert sta.derive_period() == pytest.approx(0.96 * 1.03)

    def test_histogram_sums_to_cell_count(self, paper_adder):
        lib = AgingTimingLibrary.characterize(paper_adder.library)
        sta = AgingAwareSta(paper_adder, lib, corner=TYPICAL_CORNER)
        _, increase = sta.aged_delay_model(_paper_profile(paper_adder))
        hist = delay_increase_histogram(increase)
        assert sum(count for _, _, count in hist) == len(increase)
