"""Adaptive dispatch vs static test ordering — time to detection.

The point of the belief-driven scheduler: at an equal per-device cycle
budget, learning which tests pay off should find faults *sooner* than
walking a fixed test list.  This benchmark runs one sampled 64-device
fleet (full ALU failure-model catalogue, per-case vega arms plus the
random and SiliFuzz-lite baseline suites) under each policy and
compares mean time-to-detection — the cumulative cycles a device spent
until its first detecting test, with escapes charged the full budget.

Acceptance: the Thompson-sampling bandit achieves a lower penalized
mean TTD than the static sequential baseline.  The runs are
deterministic (named RNG streams, logical-time service), so the
recorded table is byte-stable.

``VEGA_SMOKE=1`` shrinks the fleet so CI can exercise the comparison
in seconds.
"""

import os

from repro.core.config import CampaignConfig, SchedulerConfig
from repro.scheduler import ScheduleSession

SMOKE = os.environ.get("VEGA_SMOKE") == "1"
DEVICES = 16 if SMOKE else 64
POLICIES = ("sequential", "greedy", "thompson")


def _run_policy(ctx, policy):
    config = CampaignConfig(
        devices=DEVICES,
        seed=2024,
        silifuzz_snapshots=3,
        base_onset_years=6.0,
    )
    sched = SchedulerConfig(
        policy=policy,
        policy_seed=7,
        batch_size=16,
        batch_window=4,
        ingest_queue=64,
        checkpoint_every=1_000_000,
        cycle_budget=25_000,
    )
    session = ScheduleSession(
        ctx.alu.netlist,
        "alu",
        ctx.alu.suite(False),
        ctx.alu.failure_models(),
        config=config,
        scheduler=sched,
    )
    return session.run().report


def test_adaptive_policy_beats_static_baseline(ctx, recorder):
    reports = {policy: _run_policy(ctx, policy) for policy in POLICIES}

    rows = [
        f"Time-to-detection by dispatch policy — {DEVICES}-device ALU "
        f"fleet, equal {reports['sequential'].cycle_budget}-cycle "
        f"budget per device" + (" [smoke]" if SMOKE else ""),
        "policy     | detected | escapes | events | mean TTD (cycles) "
        "| penalized TTD",
    ]
    for policy in POLICIES:
        r = reports[policy]
        ttd = f"{r.mean_ttd_cycles:.1f}" if r.mean_ttd_cycles else "n/a"
        rows.append(
            f"{policy:10s} | {r.detected:8d} | {r.escapes:7d} "
            f"| {r.events:6d} | {ttd:>17s} "
            f"| {r.penalized_ttd_cycles:.1f}"
        )
        # Logical-time metrics: byte-deterministic for a given seed,
        # so they hard-fail the regression gate on any drift.
        recorder.sample(
            "scheduler_policies", "penalized_ttd", r.penalized_ttd_cycles,
            "cycles", policy=policy, devices=DEVICES, seed=2024,
        )
        recorder.sample(
            "scheduler_policies", "detected", r.detected, "devices",
            policy=policy, devices=DEVICES, seed=2024,
            bigger_is_better=True,
        )
        recorder.sample(
            "scheduler_policies", "escapes", r.escapes, "devices",
            policy=policy, devices=DEVICES, seed=2024,
        )
        recorder.sample(
            "scheduler_policies", "events", r.events, "events",
            policy=policy, devices=DEVICES, seed=2024,
            bigger_is_better=True,
        )
    recorder.table("scheduler_policies", "\n".join(rows))

    # Same fleet, same per-device budget: every policy must see the
    # same devices and the loud ALU faults stay detectable.
    faulty = {r.faulty for r in reports.values()}
    assert len(faulty) == 1

    # The acceptance bar: adaptive dispatch detects sooner than the
    # static sequential order at equal budget.
    assert (
        reports["thompson"].penalized_ttd_cycles
        < reports["sequential"].penalized_ttd_cycles
    ), (
        f"thompson TTD {reports['thompson'].penalized_ttd_cycles:.1f} "
        f"not below sequential "
        f"{reports['sequential'].penalized_ttd_cycles:.1f}"
    )
