"""End-to-end workflow tests on the real ALU (scaled for test speed)."""

import pytest

from repro.core.config import (
    AgingAnalysisConfig,
    ErrorLiftingConfig,
    VegaConfig,
)
from repro.core.workflow import VegaWorkflow
from repro.cpu.alu_design import build_alu
from repro.cpu.cosim import GateAluBackend
from repro.cpu.mappers import AluMapper
from repro.lifting.lifter import PairOutcome
from repro.workloads import collect_operand_streams


@pytest.fixture(scope="module")
def alu():
    return build_alu()


@pytest.fixture(scope="module")
def alu_stream():
    stream, _ = collect_operand_streams(["minver"])
    return stream


@pytest.fixture(scope="module")
def workflow_report(alu, alu_stream):
    config = VegaConfig(
        aging=AgingAnalysisConfig(clock_margin=0.03, max_paths_per_endpoint=50),
        lifting=ErrorLiftingConfig(bmc_depth=4),
    )
    workflow = VegaWorkflow(config)
    return workflow.run(alu, alu_stream, AluMapper())


class TestVegaWorkflowOnAlu:
    def test_fresh_design_signs_off(self, workflow_report):
        assert workflow_report.sta_report.fresh_report.violations == []

    def test_aged_design_violates(self, workflow_report):
        report = workflow_report.sta_report.report  # AgingStaResult wrapper
        assert report.setup_violations()
        assert report.wns_setup_ns < 0

    def test_sp_profile_collected(self, workflow_report, alu):
        profile = workflow_report.sp_profile
        assert profile.samples > 0
        assert set(profile.sp) == set(alu.nets)

    def test_lifting_outcomes_mix(self, workflow_report):
        lifting = workflow_report.lifting_report
        outcomes = {pair.outcome for pair in lifting.pairs}
        # Paths from toggleable operand flops construct; paths from the
        # mission-constant DFT flop are proven unrealizable.
        assert PairOutcome.CONSTRUCTED in outcomes
        starts = {pair.start for pair in lifting.pairs}
        if any(s.startswith("dft_q") for s in starts):
            assert PairOutcome.UNREALIZABLE in outcomes

    def test_dft_pairs_are_unrealizable(self, workflow_report):
        for pair in workflow_report.lifting_report.pairs:
            if pair.start.startswith(("dft_q", "mode_q", "rm_q")):
                assert pair.outcome is PairOutcome.UNREALIZABLE

    def test_suite_runs_clean_on_healthy_gate_alu(self, workflow_report, alu):
        suite = workflow_report.test_suite
        assert suite.test_cases
        result = suite.run_suite(alu=GateAluBackend(alu))
        assert not result.detected

    def test_suite_compact(self, workflow_report):
        assert 0 < workflow_report.test_suite.suite_cycles() < 2000

    def test_summary_renders(self, workflow_report):
        text = workflow_report.summary()
        assert "aging-prone paths" in text
        assert "test cases" in text

    def _detection_count(self, suite, alu, constructed):
        from repro.lifting.instrument import make_failing_netlist
        from repro.lifting.models import CMode, FailureModel

        detected = 0
        for pair in constructed:
            model = FailureModel(pair.start, pair.end, pair.kind, CMode.ONE)
            failing = make_failing_netlist(alu, model)
            result = suite.run_suite(alu=GateAluBackend(failing.netlist))
            detected += int(result.detected)
        return detected

    def test_suite_detects_lifted_failures(self, workflow_report, alu):
        """Constructed pairs' failing netlists are (mostly) detected.

        Without the §3.3.4 mitigation, occasional misses are expected:
        a test's activation may depend on reset-time register values
        that the suite's own preceding instructions perturb — the exact
        phenomenon the paper reports in §5.2.3.
        """
        suite = workflow_report.test_suite
        constructed = [
            pair
            for pair in workflow_report.lifting_report.pairs
            if pair.outcome is PairOutcome.CONSTRUCTED
        ]
        assert constructed
        detected = self._detection_count(suite, alu, constructed)
        assert detected >= (len(constructed) + 1) // 2

    def test_mitigation_closes_detection_gaps(
        self, workflow_report, alu, alu_stream
    ):
        """The edge-qualified suite detects every constructed failure."""
        config = VegaConfig(
            aging=AgingAnalysisConfig(
                clock_margin=0.03, max_paths_per_endpoint=50
            ),
            lifting=ErrorLiftingConfig(bmc_depth=4, enable_mitigation=True),
        )
        report = VegaWorkflow(config).run(alu, alu_stream, AluMapper())
        constructed = [
            pair
            for pair in report.lifting_report.pairs
            if pair.outcome is PairOutcome.CONSTRUCTED
        ]
        assert constructed
        detected = self._detection_count(
            report.test_suite, alu, constructed
        )
        assert detected == len(constructed)


class TestMapperContracts:
    def test_alu_mapper_assumptions_cover_control_inputs(self):
        names = {a.port for a in AluMapper().assumptions()}
        assert names == {"op", "mode", "dft"}

    def test_fpu_mapper_assumptions_cover_control_inputs(self):
        from repro.cpu.mappers import FpuMapper

        names = {a.port for a in FpuMapper().assumptions()}
        assert names == {"op", "rm", "in_valid", "dft"}


class TestMarkdownReport:
    def test_renders_all_phases(self, workflow_report):
        text = workflow_report.to_markdown()
        assert "# Vega report" in text
        assert "## Phase 1" in text
        assert "## Phase 2" in text
        assert "## Phase 3" in text
        assert "| start | end | kind |" in text
        assert "cycles per pass" in text
