"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_workloads_lists_all(self):
        code, text = _run(["workloads"])
        assert code == 0
        assert text.count("\n") == 11
        assert "minver" in text and "crc32" in text and "matmult_hw" in text

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sta_alu(self):
        code, text = _run(["sta", "--unit", "alu"])
        assert code == 0
        assert "fresh violations: 0" in text
        assert "aged setup:" in text
        assert "~>" in text

    def test_inject_emits_verilog(self, tmp_path):
        out_file = tmp_path / "failing.v"
        code, text = _run(
            [
                "inject",
                "--unit", "alu",
                "--start", "a_q_r0",
                "--end", "res_q_r1",
                "--c", "1",
                "-o", str(out_file),
            ]
        )
        assert code == 0
        verilog = out_file.read_text()
        assert "module alu__fail" in verilog
        assert "MUX2" in verilog

    def test_suite_asm_artifact(self, tmp_path):
        out_file = tmp_path / "suite.s"
        code, _ = _run(
            ["suite", "--unit", "alu", "--format", "asm", "-o", str(out_file)]
        )
        assert code == 0
        asm = out_file.read_text()
        assert "ecall" in asm
        # The suite must assemble and pass on the golden backend.
        from repro.cpu.cpu import run_program

        result = run_program(asm)
        assert result.exit_value == 0

    def test_integrate_reports_overhead(self):
        code, text = _run(["integrate", "--workload", "minver", "--units", "alu"])
        assert code == 0
        assert "measured overhead" in text
        assert "result preserved: True" in text

    def test_models_exports_library(self, tmp_path):
        out_dir = tmp_path / "models"
        code, text = _run(["models", "--unit", "alu", "-o", str(out_dir)])
        assert code == 0
        import json

        index = json.loads((out_dir / "index.json").read_text())
        assert index["unit"] == "alu"
        assert index["models"]
        for entry in index["models"]:
            assert (out_dir / entry["file"]).exists()
        # Suite artifacts came along.
        assert any(p.suffix == ".c" for p in out_dir.iterdir())

    def test_verify_alu_roundtrip_and_optimizer(self):
        code, text = _run(["verify", "--unit", "alu", "--depth", "2"])
        assert code == 0
        assert "round-trip equivalent: True" in text
        assert "optimizer" in text


class TestRunAndTrace:
    def test_run_traces_and_resumes(self, tmp_path):
        from repro.core import telemetry

        cache = str(tmp_path / "cache")
        trace = str(tmp_path / "out.jsonl")
        argv = ["run", "--unit", "alu", "--cache-dir", cache]

        code, text = _run(argv + ["--trace", trace, "--metrics"])
        assert code == 0
        assert "Vega workflow report" in text
        assert f"trace written to {trace}" in text
        assert "# Vega run metrics" in text
        # The written trace is valid JSONL covering all three phases.
        records = telemetry.read_trace(trace)
        phases = {
            r["name"]
            for r in records
            if r["type"] == "span" and r.get("parent") is None
        }
        assert phases == {
            "phase1.aging_analysis",
            "phase2.error_lifting",
            "phase3.test_integration",
        }

        # Second invocation resumes every phase from its checkpoint.
        code, text = _run(argv + ["--resume"])
        assert code == 0
        assert (
            "resumed from checkpoints: phase1, phase2, phase3" in text
        )

        # The standalone summarizer renders the written trace.
        code, text = _run(["trace", "summarize", trace])
        assert code == 0
        assert "## Phases" in text
        assert "phase2.error_lifting" in text

    def test_resume_requires_cache(self):
        code, _ = _run(["run", "--unit", "alu", "--resume", "--no-cache"])
        assert code == 2

    def test_summarize_rejects_invalid_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        code, _ = _run(["trace", "summarize", str(bad)])
        assert code == 1
        code, _ = _run(["trace", "summarize", str(tmp_path / "missing")])
        assert code == 1


class TestCampaignCli:
    def test_campaign_run_and_report(self, tmp_path):
        report_file = str(tmp_path / "campaign.json")
        code, text = _run(
            [
                "campaign", "run",
                "--unit", "alu",
                "--devices", "4",
                "--shard-size", "2",
                "--onset-years", "6",
                "--report", report_file,
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "campaign: alu fleet of 4" in text
        assert f"report written to {report_file}" in text

        code, text = _run(["campaign", "report", report_file])
        assert code == 0
        assert "# Campaign report" in text
        assert "## Detection coverage" in text

        # Re-running with --resume recomputes nothing.
        code, text = _run(
            [
                "campaign", "run",
                "--unit", "alu",
                "--devices", "4",
                "--shard-size", "2",
                "--onset-years", "6",
                "--resume",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "resumed 2 shard(s) from checkpoints; executed 0" in text

    def test_campaign_resume_requires_cache(self):
        code, _ = _run(
            ["campaign", "run", "--resume", "--no-cache"]
        )
        assert code == 2

    def test_campaign_report_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json}")
        code, _ = _run(["campaign", "report", str(bad)])
        assert code == 1
        code, _ = _run(
            ["campaign", "report", str(tmp_path / "missing.json")]
        )
        assert code == 1
