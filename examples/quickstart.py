#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Walks the 2-bit pipelined adder of Listing 1 / Figure 3 through all
three Vega phases:

1. Aging Analysis  — SP profiling (Table 1) and aging-aware STA;
2. Error Lifting   — failure-model instrumentation, shadow replica,
                     cover property, and a BMC witness (Table 2);
3. Test artifacts  — the failing netlist as Verilog, and the witness
                     replayed to show the corrupted output.

Run:  python examples/quickstart.py
"""

import random

from repro.aging.charlib import AgingTimingLibrary
from repro.core.config import AgingAnalysisConfig
from repro.core.example import build_paper_adder
from repro.formal.bmc import BoundedModelChecker, CoverObjective
from repro.lifting.instrument import instrument_for_cover, make_failing_netlist
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sim.gatesim import GateSimulator
from repro.sim.probes import profile_stimulus
from repro.sta.aging_sta import AgingAwareSta
from repro.aging.corners import TYPICAL_CORNER


def main() -> None:
    adder = build_paper_adder()
    print(f"Netlist: {adder}")
    print()

    # ------------------------------------------------------------------
    print("Phase 1 - Aging Analysis")
    print("-" * 40)
    rng = random.Random(2024)
    stimulus = [
        {"a": rng.randrange(4), "b": rng.randrange(4)} for _ in range(2000)
    ]
    profile = profile_stimulus(adder, stimulus)
    print("SP profile (cf. Table 1):")
    for inst_name in ("d1", "d2", "d3", "d4", "x5", "a6", "x7", "x8", "d9", "d10"):
        net = adder.instances[inst_name].output_net
        print(f"  {inst_name:4s} SP = {profile.sp[net.name]:.2f}")

    timing_lib = AgingTimingLibrary.characterize(adder.library)
    sta = AgingAwareSta(
        adder,
        timing_lib,
        config=AgingAnalysisConfig(clock_margin=0.042),
        corner=TYPICAL_CORNER,
    )
    result = sta.analyze(profile, clock_period_ns=1.0)
    print(f"\nFresh STA at 1 GHz: {len(result.fresh_report.violations)} violations")
    print(f"Aged STA (10y):     {len(result.report.violations)} violating paths")
    for violation in result.report.representative_violations():
        print(
            f"  {violation.kind:5s} {violation.start} ~> {violation.end} "
            f"via {list(violation.cells)} slack={violation.slack*1000:.0f}ps"
        )

    # ------------------------------------------------------------------
    print()
    print("Phase 2 - Error Lifting")
    print("-" * 40)
    model = FailureModel("d4", "d10", ViolationKind.SETUP, CMode.ONE)
    instr = instrument_for_cover(adder, model)
    print(f"Shadow replica cells: "
          f"{[n for n in instr.netlist.instances if n.endswith('__s')]}")
    print(f"Cover property: {instr.cover_property_text()}")

    bmc = BoundedModelChecker(instr.netlist)
    cover = bmc.cover(
        CoverObjective(differ=instr.output_pairs),
        max_depth=5,
        observe=[net for pair in instr.output_pairs for net in pair],
    )
    print(f"BMC: {cover.status.value} at depth {cover.depth_checked}")
    print("\nWitness trace (cf. Table 2):")
    print(cover.trace.to_table())

    # ------------------------------------------------------------------
    print()
    print("Phase 3 - Failure model & replay")
    print("-" * 40)
    failing = make_failing_netlist(adder, model)
    print("Failing netlist emitted as Verilog "
          f"({len(failing.to_verilog().splitlines())} lines); replaying witness:")
    good = GateSimulator(adder)
    bad = GateSimulator(failing.netlist)
    for cycle, frame in enumerate(cover.trace.inputs, start=1):
        go = good.step(frame)
        bo = bad.step(frame)
        marker = "  <-- corrupted" if go != bo else ""
        print(
            f"  cycle {cycle}: a={frame['a']:02b} b={frame['b']:02b} "
            f"o_good={go['o']:02b} o_aged={bo['o']:02b}{marker}"
        )


if __name__ == "__main__":
    main()
