"""Error Lifting orchestration — phase 2 of the Vega workflow (§3.3).

For every unique endpoint pair reported by Aging Analysis, the lifter:

1. builds failure models for each constant C (and, with the §3.3.4
   mitigation, for rising/falling activation edges),
2. instruments a shadow replica and runs the bounded model checker on
   the resulting cover property,
3. converts each witness into a software test case via the unit's
   :class:`~repro.lifting.testcase.IsaMapper`, and
4. classifies the pair with the paper's Table 4 taxonomy:
   S (constructed), UR (proven unrealizable), FF (formal budget
   exceeded), FC (witness found but not convertible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from ..core.config import ErrorLiftingConfig
from ..formal.bmc import BmcStatus, BoundedModelChecker, CoverObjective
from ..netlist.netlist import Netlist
from ..sim.gatesim import GateSimulator
from ..sta.timing import StaReport, TimingViolation
from .instrument import (
    FailingNetlist,
    InstrumentationError,
    instrument_for_cover,
    make_failing_netlist,
)
from .models import CMode, FailureModel, ViolationKind
from .testcase import IsaMapper, TestCase, UnmappableTraceError


class PairOutcome(Enum):
    """Table 4 classification for one unique endpoint pair."""

    CONSTRUCTED = "S"
    UNREALIZABLE = "UR"
    FORMAL_FAILURE = "FF"
    CONVERSION_FAILURE = "FC"


@dataclass
class VariantResult:
    """Result for one (C, edge) failure-model variant."""

    model: FailureModel
    status: BmcStatus
    test_case: Optional[TestCase] = None
    conversion_failed: bool = False
    conflicts: int = 0


@dataclass
class PairResult:
    start: str
    end: str
    kind: ViolationKind
    variants: List[VariantResult] = field(default_factory=list)
    #: Set when the pair crashed mid-lift and the run kept going
    #: (``ErrorLiftingConfig.keep_going``); the traceback summary also
    #: lands in the telemetry trace as a ``lifting.pair_error`` event.
    error: Optional[str] = None

    @property
    def outcome(self) -> PairOutcome:
        """Aggregate classification, matching the paper's accounting.

        A pair counts as S when any variant yields a test; as FC when a
        witness existed but none converted; as FF when the formal tool
        gave up before any witness/proof; as UR when every variant is
        proven unrealizable.  A pair that *crashed* before producing any
        variant is accounted FF — the tooling, not the circuit, failed
        to settle it.
        """
        if any(v.test_case is not None for v in self.variants):
            return PairOutcome.CONSTRUCTED
        if any(v.conversion_failed for v in self.variants):
            return PairOutcome.CONVERSION_FAILURE
        if any(v.status is BmcStatus.BUDGET_EXCEEDED for v in self.variants):
            return PairOutcome.FORMAL_FAILURE
        if self.error is not None and not self.variants:
            return PairOutcome.FORMAL_FAILURE
        return PairOutcome.UNREALIZABLE

    @property
    def test_cases(self) -> List[TestCase]:
        return [v.test_case for v in self.variants if v.test_case is not None]


@dataclass
class LiftingReport:
    """Everything phase 2 produces (tests + failure models + stats)."""

    netlist_name: str
    unit: str
    pairs: List[PairResult] = field(default_factory=list)
    mitigation: bool = False

    @property
    def test_cases(self) -> List[TestCase]:
        cases: List[TestCase] = []
        for pair in self.pairs:
            cases.extend(pair.test_cases)
        return cases

    def outcome_counts(self) -> Dict[str, int]:
        counts = {o.value: 0 for o in PairOutcome}
        for pair in self.pairs:
            counts[pair.outcome.value] += 1
        return counts

    def outcome_percentages(self) -> Dict[str, float]:
        counts = self.outcome_counts()
        total = sum(counts.values()) or 1
        return {k: 100.0 * v / total for k, v in counts.items()}

    @property
    def error_pairs(self) -> List[PairResult]:
        """Pairs that crashed mid-lift and were skipped (keep_going)."""
        return [p for p in self.pairs if p.error is not None]


class ErrorLifter:
    """Runs Error Lifting for one netlist + ISA mapper."""

    def __init__(
        self,
        netlist: Netlist,
        config: Optional[ErrorLiftingConfig] = None,
        mapper: Optional[IsaMapper] = None,
    ):
        self.netlist = netlist
        self.config = config or ErrorLiftingConfig()
        self.mapper = mapper

    # ------------------------------------------------------------------
    def lift(
        self, sta_report: StaReport, workers: Optional[int] = None
    ) -> LiftingReport:
        """Process every unique endpoint pair of ``sta_report``.

        Pairs are independent, so with ``workers > 1`` (argument or
        ``config.workers``) they are sharded across processes via
        :mod:`repro.lifting.parallel`; results keep the serial order.
        """
        from .parallel import lift_pairs

        if workers is None:
            workers = self.config.workers
        report = LiftingReport(
            netlist_name=self.netlist.name,
            unit=self.mapper.unit if self.mapper else "raw",
            mitigation=self.config.enable_mitigation,
        )
        violations = list(sta_report.representative_violations())
        report.pairs.extend(lift_pairs(self, violations, workers=workers))
        return report

    def lift_pair(self, violation: TimingViolation) -> PairResult:
        kind = (
            ViolationKind.SETUP
            if violation.kind == "setup"
            else ViolationKind.HOLD
        )
        result = PairResult(start=violation.start, end=violation.end, kind=kind)
        for c_value in self.config.constants:
            base = FailureModel(
                start=violation.start,
                end=violation.end,
                kind=kind,
                c_mode=CMode.ONE if c_value else CMode.ZERO,
            )
            for model in base.variants(self.config.enable_mitigation):
                result.variants.append(self._run_variant(model))
        return result

    # ------------------------------------------------------------------
    def _run_variant(self, model: FailureModel) -> VariantResult:
        try:
            instrumentation = instrument_for_cover(self.netlist, model)
        except InstrumentationError:
            # Endpoint cannot influence outputs: trivially unrealizable.
            return VariantResult(model=model, status=BmcStatus.UNREACHABLE)
        assumptions = list(self.mapper.assumptions()) if self.mapper else []
        checker = BoundedModelChecker(
            instrumentation.netlist,
            assumptions=assumptions,
            conflict_budget=self.config.bmc_conflict_budget,
            incremental=self.config.incremental_bmc,
        )
        objective = CoverObjective(differ=instrumentation.output_pairs)
        observe = [
            net for pair in instrumentation.output_pairs for net in pair
        ]
        bmc_result = checker.cover(
            objective, max_depth=self.config.bmc_depth, observe=observe
        )
        variant = VariantResult(
            model=model,
            status=bmc_result.status,
            conflicts=bmc_result.conflicts,
        )
        if bmc_result.status is not BmcStatus.COVERED:
            return variant

        trace = bmc_result.trace
        final = trace.observed[trace.property_cycle]
        trace.mismatch_nets = [
            orig
            for orig, shadow in instrumentation.output_pairs
            if final.get(orig) != final.get(shadow)
        ]
        golden = self._golden_outputs(trace)
        if self.mapper is None:
            variant.conversion_failed = True
            return variant
        try:
            variant.test_case = self.mapper.trace_to_test(
                trace, golden, model, name=f"t_{model.label}"
            )
        except UnmappableTraceError:
            variant.conversion_failed = True
        return variant

    def _golden_outputs(self, trace) -> List[Dict[str, int]]:
        """Fault-free module outputs for each cycle of the trace."""
        sim = GateSimulator(self.netlist)
        outputs: List[Dict[str, int]] = []
        for frame in trace.inputs:
            # The instrumented clone may expose fm_c; the original
            # netlist does not take it.
            inputs = {
                k: v
                for k, v in frame.items()
                if k in self.netlist.ports
                and self.netlist.ports[k].direction == "input"
            }
            outputs.append(sim.step(inputs))
        return outputs

    # ------------------------------------------------------------------
    def failing_netlists(
        self,
        sta_report: StaReport,
        c_modes: Sequence[CMode] = (CMode.ZERO, CMode.ONE, CMode.RANDOM),
    ) -> List[FailingNetlist]:
        """Circuit-level failure models for evaluation (Tables 6/7)."""
        out: List[FailingNetlist] = []
        for violation in sta_report.representative_violations():
            kind = (
                ViolationKind.SETUP
                if violation.kind == "setup"
                else ViolationKind.HOLD
            )
            for mode in c_modes:
                model = FailureModel(
                    start=violation.start,
                    end=violation.end,
                    kind=kind,
                    c_mode=mode,
                )
                out.append(make_failing_netlist(self.netlist, model))
        return out
