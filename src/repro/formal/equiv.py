"""SAT-based equivalence checking between two netlists.

The classic miter construction: both netlists receive the same inputs,
corresponding outputs are XORed, and the solver searches for an input
making any XOR true.  UNSAT proves combinational equivalence; for
sequential designs the check covers a bounded number of cycles from
reset (sufficient for the feed-forward pipelines in this repo).

Used to *formally* validate the netlist optimizer and the Verilog
round-trip — eating our own dog food: the same CDCL engine that lifts
aging faults proves our transformations safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.netlist import Netlist
from .encode import encode_instance, encode_xor_var
from .sat import SatSolver, SatStatus


class EquivalenceError(Exception):
    """Raised when the two netlists' interfaces do not match."""


@dataclass
class EquivalenceResult:
    """Outcome of one check."""

    equivalent: Optional[bool]  # None when the budget ran out
    counterexample: Optional[Dict[str, int]] = None
    cycle: int = -1
    conflicts: int = 0


def _check_interfaces(left: Netlist, right: Netlist) -> None:
    def signature(netlist: Netlist):
        return (
            {(p.name, p.width) for p in netlist.input_ports()},
            {(p.name, p.width) for p in netlist.output_ports()},
        )

    if signature(left) != signature(right):
        raise EquivalenceError(
            "port interfaces differ: "
            f"{signature(left)} vs {signature(right)}"
        )


def _net_signature(netlist: Netlist):
    """Canonical structural signature (net names abstracted away).

    Nets are identified by their structural role: ``("in", port, bit)``
    for inputs, ``("out", instance, pin)`` for cell outputs.  Two
    netlists with equal signatures compute identical functions.
    """
    def net_id(net):
        if net.driver is not None:
            return ("cell", net.driver[0].name)
        if net.is_input:
            return ("in", net.name)
        return ("float", net.name)

    instances = []
    for inst in sorted(netlist.instances.values(), key=lambda i: i.name):
        pins = tuple(
            (pin, net_id(inst.pins[pin])) for pin in inst.ctype.inputs
        )
        instances.append((inst.name, inst.ctype.name, inst.init, pins))
    outputs = tuple(
        (port.name, tuple(net_id(n) for n in port.nets))
        for port in sorted(netlist.output_ports(), key=lambda p: p.name)
    )
    return tuple(instances), outputs


def structurally_identical(left: Netlist, right: Netlist) -> bool:
    """Sound syntactic equivalence: identical cells and connectivity.

    Name-preserving flows (Verilog round-trips, no-op optimization)
    hit this fast path; SAT handles everything else.
    """
    return _net_signature(left) == _net_signature(right)


def check_equivalence(
    left: Netlist,
    right: Netlist,
    depth: int = 1,
    conflict_budget: int = 500_000,
) -> EquivalenceResult:
    """Miter check over ``depth`` cycles from reset.

    ``depth=1`` suffices for purely combinational designs; sequential
    pipelines need their pipeline depth + 1.  Structurally identical
    netlists short-circuit without touching the solver.
    """
    _check_interfaces(left, right)
    if structurally_identical(left, right):
        return EquivalenceResult(equivalent=True)
    solver = SatSolver()
    input_ports = sorted(p.name for p in left.input_ports())
    output_ports = sorted(p.name for p in left.output_ports())

    def unroll(netlist: Netlist) -> List[Dict[str, int]]:
        """Frame-by-frame encoding; returns per-frame net->var maps."""
        frames: List[Dict[str, int]] = []
        order = netlist.levelize()
        dffs = netlist.dffs()
        for t in range(depth):
            var_of: Dict[str, int] = {}
            for name in input_ports:
                for bit_index, net in enumerate(netlist.ports[name].nets):
                    # Shared input variables across both netlists.
                    var_of[net.name] = shared_inputs[t][(name, bit_index)]
            for dff in dffs:
                q_name = dff.output_net.name
                if t == 0:
                    q_var = solver.new_var()
                    solver.add_clause([q_var] if dff.init else [-q_var])
                    var_of[q_name] = q_var
                else:
                    var_of[q_name] = frames[t - 1][dff.pins["D"].name]
            for inst in order:
                out_name = inst.output_net.name
                var_of[out_name] = solver.new_var()
                encode_instance(solver, inst, var_of)
            frames.append(var_of)
        return frames

    shared_inputs: List[Dict[Tuple[str, int], int]] = []
    for _t in range(depth):
        frame_vars = {}
        for name in input_ports:
            for bit_index in range(left.ports[name].width):
                frame_vars[(name, bit_index)] = solver.new_var()
        shared_inputs.append(frame_vars)

    left_frames = unroll(left)
    right_frames = unroll(right)

    # Miter: any output bit differing in any frame.
    diffs: List[int] = []
    for t in range(depth):
        for name in output_ports:
            for bit_index in range(left.ports[name].width):
                l_net = left.ports[name].nets[bit_index].name
                r_net = right.ports[name].nets[bit_index].name
                diffs.append(
                    encode_xor_var(
                        solver,
                        left_frames[t][l_net],
                        right_frames[t][r_net],
                    )
                )
    solver.add_clause(diffs)

    result = solver.solve(conflict_limit=conflict_budget)
    if result.status is SatStatus.UNKNOWN:
        return EquivalenceResult(equivalent=None, conflicts=result.conflicts)
    if result.status is SatStatus.UNSAT:
        return EquivalenceResult(equivalent=True, conflicts=result.conflicts)
    # SAT: extract the distinguishing input sequence (first frame shown).
    counterexample: Dict[str, int] = {}
    for name in input_ports:
        value = 0
        for bit_index in range(left.ports[name].width):
            if result.model.get(shared_inputs[0][(name, bit_index)], False):
                value |= 1 << bit_index
        counterexample[name] = value
    return EquivalenceResult(
        equivalent=False,
        counterexample=counterexample,
        conflicts=result.conflicts,
    )
