"""Dependency-light ridge regressor with bit-reproducible snapshots.

Plain numpy closed-form ridge — deliberately no sklearn (the container
has no ML stack and the point of the surrogate is a tiny, auditable
model).  Features standardize to zero mean / unit variance, a bias
column is appended (unpenalized), and one ``np.linalg.solve`` fits
both targets (violation onset, worst slack) at once.

Snapshots are canonical JSON: ``json.dumps`` emits shortest
round-trip ``repr`` floats, so ``from_json(to_json(m))`` reproduces
every coefficient bit for bit and :meth:`digest` is a stable model
fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core import telemetry
from ..core.config import SurrogateConfig
from .dataset import SurrogateDataset
from .features import FEATURE_SCHEMA

#: Bumped on any incompatible change to the snapshot layout.
MODEL_SCHEMA = 1


class RidgeSurrogate:
    """Multi-output ridge: features -> (onset_years, slack_ns)."""

    def __init__(
        self,
        feature_names: List[str],
        mean: np.ndarray,
        scale: np.ndarray,
        weights: np.ndarray,
        ridge_lambda: float,
        calibration: Optional[Dict[str, Any]] = None,
    ):
        self.feature_names = list(feature_names)
        self.mean = np.asarray(mean, dtype=np.float64)
        self.scale = np.asarray(scale, dtype=np.float64)
        #: (n_features + 1) x 2 — last row is the bias, columns are
        #: (onset, slack).
        self.weights = np.asarray(weights, dtype=np.float64)
        self.ridge_lambda = float(ridge_lambda)
        #: Triage calibration (threshold, floors) attached by
        #: :func:`repro.surrogate.validate.calibrate_threshold`.
        self.calibration: Dict[str, Any] = dict(calibration or {})

    # -- fitting --------------------------------------------------------
    @classmethod
    def fit(
        cls,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: List[str],
        ridge_lambda: float = 1e-2,
    ) -> "RidgeSurrogate":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale = np.where(scale > 0.0, scale, 1.0)
        Z = np.hstack([
            (X - mean) / scale,
            np.ones((X.shape[0], 1), dtype=np.float64),
        ])
        penalty = ridge_lambda * np.eye(Z.shape[1], dtype=np.float64)
        penalty[-1, -1] = 0.0  # bias is unpenalized
        weights = np.linalg.solve(Z.T @ Z + penalty, Z.T @ y)
        return cls(feature_names, mean, scale, weights, ridge_lambda)

    # -- inference ------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) predictions; columns are (onset_years, slack_ns)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Z = np.hstack([
            (X - self.mean) / self.scale,
            np.ones((X.shape[0], 1), dtype=np.float64),
        ])
        return Z @ self.weights

    def predict_onset(self, X: np.ndarray) -> np.ndarray:
        return self.predict(X)[:, 0]

    def predict_slack(self, X: np.ndarray) -> np.ndarray:
        return self.predict(X)[:, 1]

    @property
    def threshold(self) -> Optional[float]:
        """Calibrated triage threshold (None before calibration)."""
        value = self.calibration.get("threshold")
        return None if value is None else float(value)

    # -- serialization --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "schema": MODEL_SCHEMA,
            "feature_schema": FEATURE_SCHEMA,
            "feature_names": list(self.feature_names),
            "mean": self.mean.tolist(),
            "scale": self.scale.tolist(),
            "weights": [row.tolist() for row in self.weights],
            "ridge_lambda": self.ridge_lambda,
            "calibration": self.calibration,
        }

    def to_json(self) -> str:
        # json emits shortest round-trip floats: loads(dumps(x)) == x
        # bit for bit, which makes the snapshot digest-stable.
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "RidgeSurrogate":
        data = json.loads(text)
        if data.get("schema") != MODEL_SCHEMA:
            raise ValueError(
                f"unsupported surrogate model schema "
                f"{data.get('schema')!r} (this build reads {MODEL_SCHEMA})"
            )
        if data.get("feature_schema") != FEATURE_SCHEMA:
            raise ValueError(
                f"model feature schema {data.get('feature_schema')!r} "
                f"does not match this build's {FEATURE_SCHEMA}"
            )
        return cls(
            feature_names=list(data["feature_names"]),
            mean=np.asarray(data["mean"], dtype=np.float64),
            scale=np.asarray(data["scale"], dtype=np.float64),
            weights=np.asarray(data["weights"], dtype=np.float64),
            ridge_lambda=float(data["ridge_lambda"]),
            calibration=dict(data.get("calibration") or {}),
        )

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def train_surrogate(
    dataset: SurrogateDataset,
    config: Optional[SurrogateConfig] = None,
    risky_horizon: float = 10.0,
) -> Tuple["RidgeSurrogate", "ValidationReport"]:
    """Split, fit, calibrate, validate — the whole training recipe.

    Returns the calibrated model plus its held-out validation report.
    Raises :class:`~repro.surrogate.validate.SurrogateValidationError`
    (fail closed) when held-out risky-tail recall lands below
    ``config.recall_floor`` — an uncalibratable model must never reach
    triage.
    """
    from .validate import ValidationReport, calibrate_threshold, validate_model

    config = config or SurrogateConfig()
    train_rows, holdout_rows = dataset.split(
        config.holdout_fraction, config.seed
    )
    with telemetry.span(
        "surrogate.train",
        rows=len(dataset.rows),
        train=len(train_rows),
        holdout=len(holdout_rows),
    ):
        X, y = dataset.matrices(train_rows)
        model = RidgeSurrogate.fit(
            X, y, dataset.feature_names, ridge_lambda=config.ridge_lambda
        )
        model.calibration = calibrate_threshold(
            model,
            train_rows,
            risky_horizon=risky_horizon,
            recall_floor=config.recall_floor,
            margin=config.threshold_margin,
        )
        report = validate_model(
            model,
            holdout_rows,
            risky_horizon=risky_horizon,
            recall_floor=config.recall_floor,
        )
        telemetry.add("surrogate.train.runs")
    return model, report
