"""Driving the service against a campaign fleet, and exact replay.

:class:`ScheduleSession` is the scheduler-side sibling of
:class:`~repro.campaign.engine.CampaignEngine`: it samples the same
virtual fleet (same ``campaign.fleet`` RNG streams, so a campaign and a
scheduled run over one config see identical devices), turns each device
into a simulated asyncio client with its ground-truth failure model,
and drives :class:`~repro.scheduler.service.DetectionService` to
completion.

Clients execute dispatched arms through the campaign's
:class:`~repro.campaign.engine.DeviceRunner` — per-case arms run
single-test :class:`~repro.integration.library_gen.AgingLibrary`
suites, baseline arms reuse :meth:`DeviceRunner.suite_outcome` — with
outcomes memoized under :func:`~repro.campaign.engine.
device_outcome_key`, the same fleet-level dedup the offline campaign
uses.

Because the whole stack is deterministic (sampled fleet, measured arm
costs, named policy RNG streams, logical-time service), *replay is
re-execution*: :meth:`ScheduleSession.run` produces the identical
event log and belief every time, and :func:`verify_replay` pins that
down by re-running and diffing the logs byte for byte.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.engine import DeviceRunner, device_outcome_key
from ..campaign.fleet import DeviceSpec, fleet_digest, sample_fleet
from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import CampaignConfig, SchedulerConfig
from ..integration.library_gen import AgingLibrary
from ..lifting.models import FailureModel
from ..netlist.netlist import Netlist
from .belief import BROAD_CLASS, ArmSpec, FleetBelief, arms_digest
from .policy import Dispatch, make_policy
from .service import (
    DetectionService,
    EventLog,
    ResultEvent,
    RetryAfter,
)


@dataclass
class ScheduleReport:
    """Aggregated outcome of one scheduled run (JSON round-trippable).

    Like :class:`~repro.campaign.report.CampaignReport`, only inputs
    that are identical for any execution interleaving enter — the
    restart-safety test compares an interrupted-and-resumed run's
    report against an uninterrupted one's, field for field.
    """

    unit: str
    policy: str
    policy_seed: int
    devices: int
    faulty: int
    detected: int
    escapes: int
    ticks: int
    events: int
    cycle_budget: int
    total_spent_cycles: int
    #: Mean cycles-to-first-detection over detected faulty devices.
    mean_ttd_cycles: Optional[float]
    #: Same mean with escapes charged the full cycle budget — the
    #: number that penalizes a policy for missing devices.
    penalized_ttd_cycles: Optional[float]
    rows: List[dict] = field(default_factory=list)

    def to_json(self) -> str:
        payload = {
            "unit": self.unit,
            "policy": self.policy,
            "policy_seed": self.policy_seed,
            "devices": self.devices,
            "faulty": self.faulty,
            "detected": self.detected,
            "escapes": self.escapes,
            "ticks": self.ticks,
            "events": self.events,
            "cycle_budget": self.cycle_budget,
            "total_spent_cycles": self.total_spent_cycles,
            "mean_ttd_cycles": self.mean_ttd_cycles,
            "penalized_ttd_cycles": self.penalized_ttd_cycles,
            "rows": self.rows,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScheduleReport":
        data = json.loads(text)
        return cls(**{name: data[name] for name in (
            "unit", "policy", "policy_seed", "devices", "faulty",
            "detected", "escapes", "ticks", "events", "cycle_budget",
            "total_spent_cycles", "mean_ttd_cycles",
            "penalized_ttd_cycles", "rows",
        )})

    def summary_lines(self) -> List[str]:
        lines = [
            f"scheduler report — unit={self.unit} policy={self.policy} "
            f"seed={self.policy_seed}",
            f"  devices={self.devices} faulty={self.faulty} "
            f"detected={self.detected} escapes={self.escapes}",
            f"  ticks={self.ticks} events={self.events} "
            f"spent_cycles={self.total_spent_cycles}",
        ]
        if self.mean_ttd_cycles is not None:
            lines.append(
                f"  mean time-to-detection: {self.mean_ttd_cycles:.1f} "
                f"cycles (penalized {self.penalized_ttd_cycles:.1f}, "
                f"budget {self.cycle_budget})"
            )
        else:
            lines.append(
                f"  mean time-to-detection: n/a (budget "
                f"{self.cycle_budget})"
            )
        return lines

    @classmethod
    def from_state(
        cls,
        unit: str,
        policy: str,
        policy_seed: int,
        fleet: Sequence[DeviceSpec],
        belief: FleetBelief,
        ticks: int,
        events: int,
    ) -> "ScheduleReport":
        rows = []
        detections: List[int] = []
        penalized: List[int] = []
        detected = escapes = faulty = 0
        total_spent = 0
        for spec in fleet:
            device = belief.devices[spec.device_id]
            total_spent += device.spent_cycles
            if spec.faulty:
                faulty += 1
                if device.detected:
                    detected += 1
                    detections.append(device.detected_cycles)
                    penalized.append(device.detected_cycles)
                else:
                    escapes += 1
                    penalized.append(belief.cycle_budget)
            rows.append(
                {
                    "device": spec.device_id,
                    "corner": spec.corner,
                    "faulty": spec.faulty,
                    "model": spec.model_label,
                    "detected": device.detected,
                    "detected_by": device.detected_by,
                    "detected_cycles": device.detected_cycles,
                    "spent_cycles": device.spent_cycles,
                    "dispatches": device.dispatches,
                }
            )
        return cls(
            unit=unit,
            policy=policy,
            policy_seed=policy_seed,
            devices=len(fleet),
            faulty=faulty,
            detected=detected,
            escapes=escapes,
            ticks=ticks,
            events=events,
            cycle_budget=belief.cycle_budget,
            total_spent_cycles=total_spent,
            mean_ttd_cycles=(
                sum(detections) / len(detections) if detections else None
            ),
            penalized_ttd_cycles=(
                sum(penalized) / len(penalized) if penalized else None
            ),
            rows=rows,
        )


@dataclass
class ScheduleOutcome:
    """Everything one :meth:`ScheduleSession.run` produced."""

    report: ScheduleReport
    log: EventLog
    belief: FleetBelief
    fleet: List[DeviceSpec]
    checkpoint_key: str
    killed: bool = False
    resumed: bool = False


class FleetAdapter:
    """Executes dispatched arms for simulated device clients.

    Wraps the campaign's :class:`DeviceRunner` so gate-level backends,
    instrumented netlists, and assembled programs are all built once
    and shared.  Per-arm outcomes are memoized under
    :func:`device_outcome_key` — devices carrying the same failure
    model replay the same simulation result instead of re-running it.
    """

    def __init__(self, runner: DeviceRunner, library: AgingLibrary):
        self.runner = runner
        self.library = library
        self._case_libraries: Dict[str, AgingLibrary] = {
            case.name: AgingLibrary(
                name=f"{library.name}__arm_{case.name}",
                test_cases=[case],
            )
            for case in library.test_cases
        }
        self._memo: Dict[tuple, ResultEvent] = {}

    def execute(self, spec: DeviceSpec, dispatch: Dispatch) -> ResultEvent:
        key = (device_outcome_key(spec), dispatch.arm)
        memo = self._memo.get(key)
        if memo is not None:
            telemetry.add("scheduler.outcome_memo_hits")
            return ResultEvent(
                device_id=spec.device_id,
                device_index=spec.index,
                arm=dispatch.arm,
                class_label=dispatch.class_label,
                detected=memo.detected,
                stalled=memo.stalled,
                cycles=memo.cycles,
                detected_by=memo.detected_by,
            )
        result = self._execute_fresh(spec, dispatch)
        self._memo[key] = result
        return result

    def _execute_fresh(
        self, spec: DeviceSpec, dispatch: Dispatch
    ) -> ResultEvent:
        config = self.runner.config
        if dispatch.kind == "case":
            case_library = self._case_libraries[
                dispatch.arm.split(":", 1)[1]
            ]
            verdict = case_library.run_suite(
                strategy=config.strategy,
                max_instructions=config.max_suite_instructions,
                **self.runner.backends(spec),
            )
            detected_by = (
                verdict.detected_by
                or (case_library.test_cases[0].name
                    if verdict.detected else None)
            )
            return ResultEvent(
                device_id=spec.device_id,
                device_index=spec.index,
                arm=dispatch.arm,
                class_label=dispatch.class_label,
                detected=verdict.detected,
                stalled=verdict.stalled,
                cycles=verdict.cycles,
                detected_by=detected_by,
            )
        outcome = self.runner.suite_outcome(dispatch.kind, spec)
        return ResultEvent(
            device_id=spec.device_id,
            device_index=spec.index,
            arm=dispatch.arm,
            class_label=dispatch.class_label,
            detected=outcome.detected,
            stalled=outcome.stalled,
            cycles=outcome.cycles,
            detected_by=outcome.detected_by,
        )


def build_arms(
    library: AgingLibrary, runner: DeviceRunner
) -> List[ArmSpec]:
    """The arm catalogue: one arm per vega case, one per baseline suite.

    Costs are *measured* on the golden model (the cycles a healthy
    device would spend), in the same spirit as
    ``ProfileGuidedIntegrator.estimate_overhead``.
    """
    config = runner.config
    arms: List[ArmSpec] = []
    if "vega" in config.suites:
        costs = library.case_cycle_costs()
        for case in library.test_cases:
            arms.append(
                ArmSpec(
                    name=f"case:{case.name}",
                    kind="case",
                    class_label=case.model.label,
                    cost_cycles=costs[case.name],
                    index=len(arms),
                )
            )
    if "random" in config.suites and runner.random_library is not None:
        arms.append(
            ArmSpec(
                name="suite:random",
                kind="random",
                class_label=BROAD_CLASS,
                cost_cycles=runner.random_library.suite_cycles(
                    config.strategy
                ),
                index=len(arms),
            )
        )
    if "silifuzz" in config.suites and runner.snapshot_programs:
        golden = runner._fuzz.detects(
            runner.snapshots, programs=runner.snapshot_programs
        )
        arms.append(
            ArmSpec(
                name="suite:silifuzz",
                kind="silifuzz",
                class_label=BROAD_CLASS,
                cost_cycles=int(golden["cycles"]),
                index=len(arms),
            )
        )
    if not arms:
        raise ValueError(
            "no dispatchable arms: campaign config enables no suites"
        )
    return arms


class ScheduleSession:
    """One scheduled detection run over a sampled fleet."""

    def __init__(
        self,
        netlist: Netlist,
        unit: str,
        library: AgingLibrary,
        failing_models: Sequence[FailureModel],
        config: Optional[CampaignConfig] = None,
        scheduler: Optional[SchedulerConfig] = None,
        cache: Optional[ArtifactCache] = None,
        base_onset_years: Optional[float] = None,
    ):
        self.netlist = netlist
        self.unit = unit
        self.library = library
        self.failing_models = list(failing_models)
        self.config = config or CampaignConfig()
        self.scheduler = scheduler or SchedulerConfig()
        self.cache = cache
        if base_onset_years is None:
            base_onset_years = self.config.base_onset_years
        if base_onset_years is None:
            base_onset_years = 0.6 * self.config.mission_years
        self.base_onset_years = float(base_onset_years)

    @classmethod
    def for_unit(
        cls,
        unit_experiment,
        config: Optional[CampaignConfig] = None,
        scheduler: Optional[SchedulerConfig] = None,
        cache: Optional[ArtifactCache] = None,
        mitigation: bool = False,
    ) -> "ScheduleSession":
        """Session over a :class:`~repro.core.experiments.UnitExperiment`
        (the same pipeline reuse as :meth:`CampaignEngine.for_unit`)."""
        return cls(
            unit_experiment.netlist,
            unit_experiment.unit,
            unit_experiment.suite(mitigation),
            unit_experiment.failure_models(),
            config=config,
            scheduler=scheduler,
            cache=cache,
        )

    # -- identity -------------------------------------------------------
    def session_key(self, fleet: Sequence[DeviceSpec]) -> str:
        """Content-addressed identity of this scheduled run.

        Every input that changes the trajectory enters — including the
        batching/queue knobs, because they change the order evidence
        arrives in and therefore the belief's path (unlike the
        campaign's ``workers``, which never does).
        """
        config = self.config
        sched = self.scheduler
        return ArtifactCache.digest(
            "scheduler",
            self.netlist.structural_hash(),
            self.unit,
            [
                config.seed,
                config.devices,
                list(config.suites),
                config.strategy,
                config.mission_years,
                config.onset_sigma,
                config.worst_corner_fraction,
                config.random_suite_size,
                config.silifuzz_snapshots,
                config.max_suite_instructions,
            ],
            [
                sched.policy,
                sched.policy_seed,
                sched.batch_size,
                sched.batch_window,
                sched.ingest_queue,
                sched.checkpoint_every,
                sched.cycle_budget,
                sched.fleet_blend,
            ],
            round(self.base_onset_years, 9),
            fleet_digest(fleet),
            self.library.suite_source(config.strategy),
        )

    # -- execution ------------------------------------------------------
    def run(
        self,
        resume: bool = False,
        kill_after_events: Optional[int] = None,
    ) -> ScheduleOutcome:
        """Execute (or resume) the scheduled run to completion.

        ``resume=True`` loads the latest belief checkpoint published
        under the session key and continues from it; without a matching
        checkpoint the run starts fresh.  ``kill_after_events``
        simulates an abrupt service death after that many ingested
        results — no drain, no final checkpoint — for restart-safety
        tests.
        """
        fleet = sample_fleet(
            self.config, self.failing_models, self.base_onset_years
        )
        key = self.session_key(fleet)
        runner = DeviceRunner(
            self.netlist, self.unit, self.config, self.library
        )
        arms = build_arms(self.library, runner)
        adapter = FleetAdapter(runner, self.library)
        classes = sorted({model.label for model in self.failing_models})

        tick = 0
        events = 0
        resumed = False
        belief: Optional[FleetBelief] = None
        if resume and self.cache is not None:
            state = self.cache.load_checkpoint(key)
            if (
                isinstance(state, dict)
                and state.get("arms") == arms_digest(arms)
                and state.get("policy") == self.scheduler.policy
                and state.get("policy_seed") == self.scheduler.policy_seed
            ):
                belief = FleetBelief.from_snapshot(state["belief"])
                tick = int(state["tick"])
                events = int(state["events_ingested"])
                resumed = True
                telemetry.event(
                    "scheduler.resumed", tick=tick, events=events
                )
        if belief is None:
            belief = FleetBelief(
                fleet,
                classes,
                cycle_budget=self.scheduler.cycle_budget,
                fleet_blend=self.scheduler.fleet_blend,
            )

        policy = make_policy(
            self.scheduler.policy, self.scheduler.policy_seed
        )
        log = EventLog(run_id=f"sched-{key[:12]}")
        service = DetectionService(
            belief=belief,
            arms=arms,
            policy=policy,
            config=self.scheduler,
            log=log,
            cache=self.cache,
            checkpoint_key=key,
            tick=tick,
            events_ingested=events,
        )
        service.kill_after_events = kill_after_events

        with telemetry.span(
            "scheduler.run",
            unit=self.unit,
            policy=policy.name,
            devices=len(fleet),
            arms=len(arms),
        ) as span:
            active = [
                spec
                for spec in fleet
                if not belief.device_done(spec.device_id, arms)
            ]
            asyncio.run(self._drive(service, adapter, active))
            if span is not None:
                span.annotate(
                    ticks=service.tick,
                    events=service.events_ingested,
                    resumed=resumed,
                )

        report = ScheduleReport.from_state(
            self.unit,
            policy.name,
            policy.seed,
            fleet,
            belief,
            ticks=service.tick,
            events=service.events_ingested,
        )
        return ScheduleOutcome(
            report=report,
            log=log,
            belief=belief,
            fleet=list(fleet),
            checkpoint_key=key,
            killed=kill_after_events is not None
            and service.events_ingested >= kill_after_events,
            resumed=resumed,
        )

    async def _drive(
        self,
        service: DetectionService,
        adapter: FleetAdapter,
        specs: Sequence[DeviceSpec],
    ) -> None:
        clients = [
            asyncio.ensure_future(self._client(service, adapter, spec))
            for spec in specs
        ]
        await asyncio.gather(service.run(), *clients)

    async def _client(
        self,
        service: DetectionService,
        adapter: FleetAdapter,
        spec: DeviceSpec,
    ) -> None:
        """One simulated device: request, execute, stream back, repeat."""
        while True:
            dispatch = await service.request_plan(
                spec.device_id, spec.index
            )
            if dispatch is None:
                return
            result = adapter.execute(spec, dispatch)
            while True:
                try:
                    await service.submit_result(result)
                    break
                except RetryAfter as exc:
                    telemetry.add("scheduler.client_retries")
                    for _ in range(exc.retry_after):
                        await asyncio.sleep(0)


def verify_replay(
    session: ScheduleSession, reference: ScheduleOutcome
) -> Tuple[bool, ScheduleOutcome]:
    """Re-execute a session and compare event logs byte for byte.

    Returns ``(matches, replayed_outcome)`` — the reproducibility check
    behind ``repro schedule --verify-replay`` and the CI smoke step.
    """
    replayed = session.run()
    matches = (
        replayed.log.to_jsonl() == reference.log.to_jsonl()
        and replayed.belief.digest() == reference.belief.digest()
    )
    return matches, replayed
