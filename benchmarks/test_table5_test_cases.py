"""Table 5 — number of generated test cases and their cycle cost.

Paper shape: the whole suite executes in hundreds (ALU) to one-to-two
thousand (FPU) cycles — small enough for per-second scheduling — and
the mitigation roughly doubles both counts (2 -> 4 variants per pair).
"""


def test_table5_suite_sizes_and_cycles(ctx, benchmark, recorder):
    rows = ["Unit | Mitigation | test cases | cycles"]
    data = {}
    for unit_name in ("alu", "fpu"):
        unit = ctx.unit(unit_name)
        for mitigation in (False, True):
            suite = unit.suite(mitigation)
            cycles = suite.suite_cycles()
            data[(unit_name, mitigation)] = (len(suite.test_cases), cycles)
            rows.append(
                f"{unit_name.upper():4s} | {'w/ ' if mitigation else 'w/o'}       "
                f"| {len(suite.test_cases):10d} | {cycles}"
            )
            recorder.sample(
                "table5_test_cases", "test_cases", len(suite.test_cases),
                "tests", unit=unit_name, mitigation=mitigation,
                bigger_is_better=True,
            )
            recorder.sample(
                "table5_test_cases", "suite_cycles", cycles, "cycles",
                unit=unit_name, mitigation=mitigation,
            )
    recorder.table("table5_test_cases", "\n".join(rows))

    alu_plain = data[("alu", False)]
    fpu_plain = data[("fpu", False)]
    # Suites stay compact: hundreds to a couple thousand cycles.
    assert 0 < alu_plain[1] < 3000
    assert 0 < fpu_plain[1] < 12000
    # The FPU suite is larger than the ALU's (more aging-prone pairs).
    assert fpu_plain[0] > alu_plain[0]
    # Mitigation produces more tests (up to 2x) at higher cycle cost.
    for unit_name in ("alu", "fpu"):
        plain = data[(unit_name, False)]
        mitigated = data[(unit_name, True)]
        assert plain[0] <= mitigated[0] <= 2 * plain[0]
        assert mitigated[1] >= plain[1]

    # Benchmark: one fault-free execution of the ALU suite.
    suite = ctx.alu.suite(False)
    result = benchmark(suite.run_suite)
    assert not result.detected
