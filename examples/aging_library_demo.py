#!/usr/bin/env python3
"""The software aging library (§3.4.1): artifacts and scheduling.

Shows the three packaging forms of a generated test suite:

* the C source artifact with inline assembly and scheduling helpers,
* the standalone assembly suite for bare-metal execution, and
* the Python runner with sequential/random scheduling and the
  exception-raising fault hook.

Run:  python examples/aging_library_demo.py
"""

from repro.cpu.alu_design import build_alu
from repro.cpu.cosim import GateAluBackend
from repro.cpu.mappers import AluMapper
from repro.core.config import ErrorLiftingConfig
from repro.integration.library_gen import AgingFaultDetected, AgingLibrary
from repro.lifting.instrument import make_failing_netlist
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sta.timing import TimingViolation


def main() -> None:
    alu = build_alu()
    # Lift two concrete aging-prone pairs directly (skipping the STA
    # phase keeps this demo fast; see alu_workflow.py for the full
    # pipeline).
    lifter = ErrorLifter(alu, ErrorLiftingConfig(), AluMapper())
    violations = [
        TimingViolation("setup", "a_q_r0", "res_q_r1", ("u1",), 6.1, 6.0),
        TimingViolation("setup", "b_q_r3", "res_q_r4", ("u2",), 6.1, 6.0),
    ]
    cases = []
    for violation in violations:
        cases.extend(lifter.lift_pair(violation).test_cases)
    library = AgingLibrary(name="demo", test_cases=cases, seed=7)
    print(f"Library with {len(library.test_cases)} tests\n")

    print("--- C artifact (first 40 lines) " + "-" * 20)
    for line in library.c_source().splitlines()[:40]:
        print(line)

    print("\n--- assembly suite (first 25 lines) " + "-" * 16)
    for line in library.suite_source().splitlines()[:25]:
        print(line)

    print("\n--- scheduling strategies " + "-" * 26)
    print("sequential order:", library.order("sequential"))
    print("random order:    ", library.order("random"))

    print("\n--- exception-style fault reporting " + "-" * 16)
    model = FailureModel("a_q_r0", "res_q_r1", ViolationKind.SETUP, CMode.ONE)
    failing = make_failing_netlist(alu, model)
    try:
        library.raise_on_fault(
            library.run_suite(alu=GateAluBackend(failing.netlist))
        )
        print("suite passed (failure not activated by this order)")
    except AgingFaultDetected as fault:
        print(f"caught: {fault}")


if __name__ == "__main__":
    main()
