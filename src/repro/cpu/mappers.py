"""Trace-to-instruction mappers for the ALU and FPU (§3.3.5).

This module is the per-microarchitecture "expert knowledge" the paper
describes: a lookup table linking module-level signal activation to
instructions.  For our core the contract is direct —

* one ALU operation per cycle maps to one R-type instruction whose
  opcode field equals the module's ``op`` input, and
* one FPU operation per valid cycle maps to one FP instruction.

Because the gate-level unit holds operand registers across the drain
cycles of each instruction (see :mod:`repro.cpu.cosim`), a module-level
transition between BMC frames t and t+1 is reproduced by issuing the
frame-t instruction followed by the frame-t+1 instruction back to back.

The FPU mapper also implements the paper's "FC" rule: a witness whose
only observable corruption is a status flag that an earlier instruction
of the same trace already set (flags are sticky) cannot be converted
into a self-checking test (§5.2.2).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..formal.bmc import InputAssumption
from ..formal.trace import Trace
from ..lifting.models import FailureModel
from ..lifting.testcase import TestCase, TestInstruction, UnmappableTraceError
from .alu_design import AluOp, VALID_ALU_OPS, alu_reference
from .fpu_design import FPU_LATENCY, FpuOp, VALID_FPU_OPS, fpu_reference
from .mdu_design import MduOp, VALID_MDU_OPS, mdu_reference

ALU_MNEMONIC: Dict[AluOp, str] = {
    AluOp.ADD: "add",
    AluOp.SUB: "sub",
    AluOp.SLL: "sll",
    AluOp.SLT: "slt",
    AluOp.SLTU: "sltu",
    AluOp.XOR: "xor",
    AluOp.SRL: "srl",
    AluOp.SRA: "sra",
    AluOp.OR: "or",
    AluOp.AND: "and",
}

FPU_MNEMONIC: Dict[FpuOp, str] = {
    FpuOp.FADD: "fadd.h",
    FpuOp.FSUB: "fsub.h",
    FpuOp.FMUL: "fmul.h",
    FpuOp.FMIN: "fmin.h",
    FpuOp.FMAX: "fmax.h",
    FpuOp.FEQ: "feq.h",
    FpuOp.FLT: "flt.h",
    FpuOp.FLE: "fle.h",
}


class AluMapper:
    """IsaMapper for the integer ALU."""

    unit = "alu"

    def assumptions(self) -> Sequence[InputAssumption]:
        # Standard RV32I code never issues the PULP SIMD modes, so the
        # witness is restricted to mode 0 (the paper's assume-property
        # restriction to "valid operations").
        return [
            InputAssumption("op", VALID_ALU_OPS),
            InputAssumption.fixed("mode", 0),
            InputAssumption.fixed("dft", 0),
        ]

    def trace_to_test(
        self,
        trace: Trace,
        golden_outputs: Sequence[Mapping[str, int]],
        model: FailureModel,
        name: str,
    ) -> TestCase:
        case = TestCase(name=name, unit=self.unit, model=model, source_trace=trace)
        for frame in trace.inputs:
            op = frame.get("op", 0)
            if op not in VALID_ALU_OPS:
                raise UnmappableTraceError(
                    f"witness uses illegal ALU opcode {op}"
                )
            a = frame.get("a", 0)
            b = frame.get("b", 0)
            case.instructions.append(
                TestInstruction(
                    mnemonic=ALU_MNEMONIC[AluOp(op)],
                    operands={"rs1": a, "rs2": b},
                    expected=alu_reference(op, a, b),
                )
            )
        if not case.instructions:
            raise UnmappableTraceError("empty witness")
        return case


MDU_MNEMONIC: Dict[MduOp, str] = {
    MduOp.MUL: "mul",
    MduOp.MULH: "mulh",
    MduOp.MULHSU: "mulhsu",
    MduOp.MULHU: "mulhu",
}


class MduMapper:
    """IsaMapper for the multiply unit."""

    unit = "mdu"

    def assumptions(self) -> Sequence[InputAssumption]:
        return [
            InputAssumption("op", VALID_MDU_OPS),
            InputAssumption.fixed("dft", 0),
        ]

    def trace_to_test(
        self,
        trace: Trace,
        golden_outputs: Sequence[Mapping[str, int]],
        model: FailureModel,
        name: str,
    ) -> TestCase:
        case = TestCase(
            name=name, unit=self.unit, model=model, source_trace=trace
        )
        for frame in trace.inputs:
            op = frame.get("op", 0)
            if op not in VALID_MDU_OPS:
                raise UnmappableTraceError(
                    f"witness uses illegal MDU opcode {op}"
                )
            a = frame.get("a", 0)
            b = frame.get("b", 0)
            case.instructions.append(
                TestInstruction(
                    mnemonic=MDU_MNEMONIC[MduOp(op)],
                    operands={"rs1": a, "rs2": b},
                    expected=mdu_reference(op, a, b),
                )
            )
        if not case.instructions:
            raise UnmappableTraceError("empty witness")
        return case


#: Flag output-net names of the FPU module (bit i of the flags port).
_FLAG_NETS = tuple(f"flags[{i}]" for i in range(5))


class FpuMapper:
    """IsaMapper for the binary16 FPU."""

    unit = "fpu"

    def assumptions(self) -> Sequence[InputAssumption]:
        # Software reaches the FPU only through issued instructions, so
        # the witness must model back-to-back issue: a valid opcode with
        # in_valid asserted every cycle.  (Idle bubbles between issues
        # are not precisely controllable from assembly.)
        return [
            InputAssumption("op", VALID_FPU_OPS),
            InputAssumption.fixed("in_valid", 1),
            # Our ISA always issues round-to-nearest-even.
            InputAssumption.fixed("rm", 0),
            InputAssumption.fixed("dft", 0),
        ]

    def trace_to_test(
        self,
        trace: Trace,
        golden_outputs: Sequence[Mapping[str, int]],
        model: FailureModel,
        name: str,
    ) -> TestCase:
        case = TestCase(name=name, unit=self.unit, model=model, source_trace=trace)
        issued: List[int] = []  # frame index of each issued instruction
        for index, frame in enumerate(trace.inputs):
            if not frame.get("in_valid", 0):
                continue  # pipeline bubble: no instruction this frame
            op = frame.get("op", 0)
            if op not in VALID_FPU_OPS:
                raise UnmappableTraceError(
                    f"witness uses illegal FPU opcode {op}"
                )
            a = frame.get("a", 0)
            b = frame.get("b", 0)
            value, flags = fpu_reference(op, a, b)
            case.instructions.append(
                TestInstruction(
                    mnemonic=FPU_MNEMONIC[FpuOp(op)],
                    operands={"rs1": a, "rs2": b},
                    expected=value,
                    expected_flags=flags,
                )
            )
            issued.append(index)
        if not case.instructions:
            raise UnmappableTraceError(
                "witness never asserts in_valid: failure not activatable "
                "from software"
            )
        self._check_flag_only_observability(trace, case, issued)
        return case

    def _check_flag_only_observability(
        self, trace: Trace, case: TestCase, issued: List[int]
    ) -> None:
        """Raise for the paper's FC scenario.

        If every mismatching output bit of the witness is a status
        flag, and the golden (sticky) flag accumulation from earlier
        instructions already contains those bits, no software
        comparison can observe the corruption.
        """
        mismatches = trace.mismatch_nets
        if not mismatches:
            return  # no observability data: assume convertible
        if any(net not in _FLAG_NETS for net in mismatches):
            return  # a data/valid bit differs: observable
        corrupted_bits = 0
        for net in mismatches:
            corrupted_bits |= 1 << _FLAG_NETS.index(net)
        # Which instruction produced the corrupted output?  The output
        # registered at the property cycle belongs to the operation
        # issued FPU_LATENCY frames earlier.
        faulty_frame = trace.property_cycle - FPU_LATENCY
        accumulated = 0
        for position, frame_index in enumerate(issued):
            if frame_index >= faulty_frame:
                break
            accumulated |= case.instructions[position].expected_flags or 0
        if corrupted_bits and (accumulated & corrupted_bits) == corrupted_bits:
            raise UnmappableTraceError(
                "corruption is only visible on status flags already set "
                "by earlier instructions of the trace"
            )
