"""Extra assembler coverage: directives, relocations, pseudo-ops."""

import pytest

from repro.cpu.asm import AsmError, DATA_BASE, assemble
from repro.cpu.cpu import run_program


class TestDirectives:
    def test_half_and_align(self):
        program = assemble(
            """
            .data
            h: .half 1, 2, 3
            .align 2
            w: .word 0xAABBCCDD
            .text
            la t0, w
            lw a0, 0(t0)
            ecall
            """
        )
        # Three halves = 6 bytes, aligned to 8 for the word.
        assert program.symbols["w"] == DATA_BASE + 8
        assert run_program(program).exit_value == 0xAABBCCDD

    def test_space_zero_filled(self):
        result = run_program(
            """
            .data
            buf: .space 8
            .text
            la t0, buf
            lw a0, 4(t0)
            ecall
            """
        )
        assert result.exit_value == 0

    def test_char_literals(self):
        program = assemble(".data\nc: .byte 'A', '\\n'\n.text\necall")
        assert program.data[0] == ord("A")
        assert program.data[1] == ord("\n")

    def test_globl_ignored(self):
        program = assemble(".globl main\nmain:\necall")
        assert program.symbols["main"] == 0

    def test_unknown_directive_rejected(self):
        with pytest.raises(AsmError, match="directive"):
            assemble(".frobnicate 3\necall")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AsmError, match="outside"):
            assemble(".data\nadd a0, a0, a0")


class TestRelocations:
    def test_hi_lo_compose_any_address(self):
        result = run_program(
            """
            .data
            pad: .space 2044
            v:   .word 77
            .text
            lui t0, %hi(v)
            lw a0, %lo(v)(t0)
            ecall
            """
        )
        assert result.exit_value == 77

    def test_hi_rounds_for_negative_lo(self):
        # Place the word so %lo is negative (address & 0xfff >= 0x800).
        result = run_program(
            """
            .data
            pad: .space 2128
            v:   .word 123
            .text
            lui t0, %hi(v)
            lw a0, %lo(v)(t0)
            ecall
            """
        )
        assert result.exit_value == 123

    def test_reloc_offset_arithmetic(self):
        result = run_program(
            """
            .data
            arr: .word 10, 20, 30
            .text
            lui t0, %hi(arr+8)
            lw a0, %lo(arr+8)(t0)
            ecall
            """
        )
        assert result.exit_value == 30

    def test_lo_in_addi_immediate(self):
        result = run_program(
            """
            .data
            v: .word 5
            .text
            lui t0, %hi(v)
            addi t0, t0, %lo(v)
            lw a0, 0(t0)
            ecall
            """
        )
        assert result.exit_value == 5


class TestPseudoOps:
    @pytest.mark.parametrize(
        "body,expected",
        [
            ("li a0, 1\nnot a0, a0", 0xFFFFFFFE),
            ("li a1, 7\nneg a0, a1", (-7) & 0xFFFFFFFF),
            ("li a1, 3\nmv a0, a1", 3),
        ],
    )
    def test_arith_pseudos(self, body, expected):
        assert run_program(body + "\necall").exit_value == expected

    def test_branch_pseudos(self):
        result = run_program(
            """
                li a0, 0
                li t0, 5
                li t1, 3
                bgt t0, t1, took_bgt
                ecall
            took_bgt:
                addi a0, a0, 1
                ble t1, t0, took_ble
                ecall
            took_ble:
                addi a0, a0, 1
                bgtu t0, t1, took_bgtu
                ecall
            took_bgtu:
                addi a0, a0, 1
                bleu t1, t0, took_bleu
                ecall
            took_bleu:
                addi a0, a0, 1
                ecall
            """
        )
        assert result.exit_value == 4

    def test_multiple_labels_one_line(self):
        program = assemble("a: b: c: ecall")
        assert (
            program.symbols["a"]
            == program.symbols["b"]
            == program.symbols["c"]
            == 0
        )

    def test_li_negative(self):
        assert run_program("li a0, -5\necall").exit_value == 0xFFFFFFFB

    def test_li_large_value_with_carry_rounding(self):
        # Values whose low 12 bits >= 0x800 need the lui +1 adjustment.
        value = 0x12345FFF
        assert run_program(f"li a0, {value}\necall").exit_value == value
