"""Tests for the sharded multi-process detection service
(repro.scheduler.distributed) and the scheduler-service bugfixes that
ride along with it."""

import asyncio
import json
import multiprocessing
import os
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer
from threading import Thread

import pytest

from repro.core import telemetry
from repro.core.artifacts import ArtifactCache
from repro.core.config import (
    CampaignConfig,
    ErrorLiftingConfig,
    SchedulerConfig,
)
from repro.core.telemetry import render_prometheus
from repro.cpu.alu_design import build_alu
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.scheduler import (
    DetectionService,
    EventLog,
    FleetBelief,
    ScheduleSession,
    make_policy,
)
from repro.scheduler.belief import ArmSpec
from repro.scheduler.distributed import (
    AlertHub,
    DistributedSession,
    FrameDecoder,
    MAX_FRAME_BYTES,
    MetricsServer,
    ShardRouter,
    ShardSpec,
    WebhookAlertHook,
    FrameConn,
    _ShardHandle,
    encode_frame,
    fold_event_stream,
    shard_ranges,
)
from repro.sta.timing import TimingViolation

import socket

MODELS = [
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ZERO),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE),
    FailureModel("a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.RANDOM),
]

CONFIG = CampaignConfig(
    devices=8,
    seed=11,
    silifuzz_snapshots=3,
    base_onset_years=6.0,
)

SCHED = SchedulerConfig(
    policy="thompson",
    policy_seed=7,
    batch_size=4,
    batch_window=3,
    ingest_queue=8,
    checkpoint_every=2,
    cycle_budget=40_000,
)

HAS_FORK = hasattr(os, "fork")
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="multi-process shards need os.fork"
)


@pytest.fixture(scope="module")
def alu_netlist():
    return build_alu()


@pytest.fixture(scope="module")
def vega_library(alu_netlist):
    lifter = ErrorLifter(alu_netlist, ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    return AgingLibrary(
        name="sched_vega",
        test_cases=lifter.lift_pair(violation).test_cases,
    )


def make_session(
    alu_netlist, vega_library, config=CONFIG, sched=SCHED, cache=None
):
    return ScheduleSession(
        alu_netlist,
        "alu",
        vega_library,
        MODELS,
        config=config,
        scheduler=sched,
        cache=cache,
    )


def _service(sched=SCHED, devices=4):
    from repro.campaign.fleet import sample_fleet

    config = CampaignConfig(
        devices=devices, seed=11, base_onset_years=6.0
    )
    fleet = sample_fleet(config, MODELS, 6.0)
    classes = sorted({m.label for m in MODELS})
    belief = FleetBelief(
        fleet, classes, cycle_budget=sched.cycle_budget
    )
    arms = [
        ArmSpec(f"case:t{i}", "case", classes[i % len(classes)], 40, i)
        for i in range(4)
    ]
    return (
        DetectionService(
            belief=belief,
            arms=arms,
            policy=make_policy("sequential"),
            config=sched,
            log=EventLog(run_id="svc-test"),
        ),
        fleet,
    )


# ---------------------------------------------------------------------
# Bugfix regressions
# ---------------------------------------------------------------------
class TestWriteJsonlConcurrency:
    def test_tmp_name_carries_pid(self, tmp_path, monkeypatch):
        # The published file must come from a pid-unique tmp: spy on
        # os.replace to capture the tmp name actually used.
        log = EventLog(run_id="r1")
        log.event("result", 1, device="d0")
        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            seen["src"] = src
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        target = tmp_path / "log.jsonl"
        log.write_jsonl(str(target))
        assert seen["src"] == f"{target}.tmp.{os.getpid()}"
        assert target.read_text() == log.to_jsonl()

    @needs_fork
    def test_concurrent_writers_never_clobber(self, tmp_path):
        # Two processes hammering the same log path: with a shared
        # f"{path}.tmp" one writer's os.replace steals the other's tmp
        # file and the loser crashes with FileNotFoundError.  The
        # pid-suffixed tmp makes every publish self-contained.
        target = tmp_path / "shared.jsonl"

        def writer(tag: str) -> None:
            log = EventLog(run_id=f"writer-{tag}")
            for tick in range(50):
                log.event("result", tick, device=f"{tag}-{tick}")
                log.write_jsonl(str(target))

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=writer, args=(tag,)) for tag in ("a", "b")
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        # Whoever won, the published file is a complete log.
        lines = target.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "counters"

    def test_telemetry_write_jsonl_uses_pid_tmp(self, tmp_path,
                                                monkeypatch):
        instance = telemetry.Telemetry(run_id="t1")
        instance.add("x", 1)
        seen = {}
        real_replace = os.replace

        def spy(src, dst):
            seen["src"] = src
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        target = tmp_path / "trace.jsonl"
        instance.write_jsonl(str(target))
        assert seen["src"] == f"{target}.tmp.{os.getpid()}"


class TestRetryHintInFlight:
    def test_hint_accounts_for_outstanding_batch(self):
        service, fleet = _service()
        batch = SCHED.batch_size
        # Saturate the buffer and put a full batch in flight.
        service._buffer = [object()] * batch
        service._outstanding = {
            spec.device_id: None for spec in fleet[:batch]
        }
        hint = service._retry_hint()
        # One pass to drain the backlog + one for the in-flight batch.
        assert hint == 2
        # The old hint ignored the in-flight batch entirely: with the
        # window at zero it said 1 — an immediate re-collision.
        service._window = 0
        assert hint > 1

    def test_hint_monotone_in_outstanding_depth(self):
        service, fleet = _service(devices=8)
        service._buffer = [object()] * 4
        hints = []
        for depth in (0, 4, 8):
            service._outstanding = {
                spec.device_id: None for spec in fleet[:depth]
            }
            service._window = SCHED.batch_window  # window exhausted
            hints.append(service._retry_hint())
        assert hints == sorted(hints)
        assert hints[-1] > hints[0]

    def test_hint_keeps_window_deadline_when_idle(self):
        service, _ = _service()
        service._buffer = [object()] * 2
        service._outstanding = {}
        service._window = 1
        # ceil(2/4) backlog + (3 - 1) window remainder
        assert service._retry_hint() == 1 + (SCHED.batch_window - 1)


class TestDrainRetireSymmetry:
    def test_drain_path_logs_retire_like_planner(self):
        service, fleet = _service()
        service.request_shutdown()
        dispatch = asyncio.run(
            service.request_plan(fleet[0].device_id, fleet[0].index)
        )
        assert dispatch is None
        retires = [
            r
            for r in service.log.records
            if r.get("name") == "retire"
        ]
        assert len(retires) == 1
        assert retires[0]["attrs"]["device"] == fleet[0].device_id
        assert retires[0]["attrs"]["detected"] is False

    def test_stopped_service_does_not_log(self):
        service, fleet = _service()
        service._stopped = True
        assert (
            asyncio.run(
                service.request_plan(fleet[0].device_id, fleet[0].index)
            )
            is None
        )
        assert not any(
            r.get("name") == "retire" for r in service.log.records
        )

    def test_dispatch_arm_helper_is_gone(self):
        assert not hasattr(DetectionService, "dispatch_arm")


# ---------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip_under_arbitrary_chunking(self):
        frames = [
            {"op": "plan", "rid": 1, "device": "dev-0001", "index": 1},
            {"op": "submit", "rid": 2, "result": {"cycles": 40}},
            {"op": "heartbeat", "tick": 3},
        ]
        wire = b"".join(encode_frame(f) for f in frames)
        # Feed one byte at a time: partial prefixes and split bodies.
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(wire)):
            decoded.extend(decoder.feed(wire[i : i + 1]))
        assert decoded == frames

    def test_canonical_encoding_is_sorted(self):
        body = encode_frame({"b": 1, "a": 2})[4:]
        assert body == b'{"a": 2, "b": 1}'

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder()
        bad = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(ValueError, match="exceeds"):
            decoder.feed(bad)


class TestShardRanges:
    def test_tiles_exactly_with_remainder_spread(self):
        ranges = shard_ranges(10, 4)
        assert ranges == [(0, 3), (3, 6), (6, 8), (8, 10)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 10

    def test_single_shard_is_whole_fleet(self):
        assert shard_ranges(7, 1) == [(0, 7)]

    def test_more_shards_than_devices_leaves_empty_tail(self):
        ranges = shard_ranges(2, 4)
        assert ranges[:2] == [(0, 1), (1, 2)]
        assert all(lo == hi for lo, hi in ranges[2:])


# ---------------------------------------------------------------------
# Partition / merge exactness
# ---------------------------------------------------------------------
class TestPartitionMerge:
    def _evolved_belief(self):
        from repro.campaign.fleet import sample_fleet

        fleet = sample_fleet(CONFIG, MODELS, 6.0)
        classes = sorted({m.label for m in MODELS})
        belief = FleetBelief(fleet, classes, cycle_budget=10_000)
        arms = [
            ArmSpec(f"case:t{i}", "case", classes[i % 3], 40, i)
            for i in range(4)
        ]
        for i, spec in enumerate(fleet):
            for j, arm in enumerate(arms):
                belief.record_dispatch(spec.device_id, arm)
                belief.record_outcome(
                    spec.device_id, arm, (i + j) % 3 == 0, 40
                )
        return belief

    def test_merge_of_partition_reproduces_digest(self):
        belief = self._evolved_belief()
        for ranges in ([(0, 8)], [(0, 4), (4, 8)],
                       [(0, 3), (3, 5), (5, 8)]):
            shards = belief.partition(ranges)
            merged = FleetBelief.merge(shards)
            assert merged.digest() == belief.digest()
            assert merged.to_json() == belief.to_json()

    def test_partition_requires_exact_tiling(self):
        belief = self._evolved_belief()
        with pytest.raises(ValueError, match="tile"):
            belief.partition([(0, 4)])

    def test_merge_rejects_overlapping_shards(self):
        belief = self._evolved_belief()
        shards = belief.partition([(0, 4), (4, 8)])
        with pytest.raises(ValueError, match="two shards"):
            FleetBelief.merge([shards[0], shards[0]])

    def test_merge_rejects_mismatched_config(self):
        belief = self._evolved_belief()
        shards = belief.partition([(0, 4), (4, 8)])
        shards[1].fleet_blend = 0.9
        with pytest.raises(ValueError, match="disagree"):
            FleetBelief.merge(shards)


# ---------------------------------------------------------------------
# Distributed session: byte-identity, cross-N digests, kill/resume
# ---------------------------------------------------------------------
@needs_fork
class TestDistributedEquality:
    def test_process_mode_matches_in_process_reference(
        self, alu_netlist, vega_library
    ):
        session = make_session(alu_netlist, vega_library)
        dist = DistributedSession(session, shards=2)
        local = dist.run(mode="local")
        proc = dist.run(mode="process")
        # Byte-identical logs, belief digests, and reports.
        assert proc.concatenated_jsonl() == local.concatenated_jsonl()
        assert proc.merged_digest == local.merged_digest
        assert proc.report.to_json() == local.report.to_json()
        # Merge exactness: merged state == one process folding the
        # concatenated (shard, seq) event stream.
        assert proc.fold_digest == proc.merged_digest
        assert not proc.alerts

    def test_sequential_digest_invariant_across_shard_counts(
        self, alu_netlist, vega_library
    ):
        sched = SchedulerConfig(
            policy="sequential",
            batch_size=4,
            batch_window=3,
            ingest_queue=8,
            checkpoint_every=4,
            cycle_budget=40_000,
        )
        session = make_session(alu_netlist, vega_library, sched=sched)
        single = session.run()
        digests = set()
        for shards in (1, 2, 4):
            outcome = DistributedSession(session, shards=shards).run(
                mode="process"
            )
            assert outcome.fold_digest == outcome.merged_digest
            digests.add(outcome.merged_digest)
        assert digests == {single.belief.digest()}

    def test_kill_one_shard_then_resume_matches_clean_run(
        self, alu_netlist, vega_library, tmp_path
    ):
        # 16 devices / 2 shards: shard 1 runs 13 events over several
        # batches, so killing it at 10 leaves a mid-run checkpoint
        # (the 8-event batch boundary) for resume to recover from.
        config = CampaignConfig(
            devices=16, seed=11, silifuzz_snapshots=3,
            base_onset_years=6.0,
        )
        clean_session = make_session(
            alu_netlist, vega_library, config=config,
            cache=ArtifactCache(tmp_path / "clean"),
        )
        clean = DistributedSession(clean_session, shards=2).run(
            mode="process"
        )
        assert not clean.killed_shards

        session = make_session(
            alu_netlist, vega_library, config=config,
            cache=ArtifactCache(tmp_path / "drill"),
        )
        dist = DistributedSession(session, shards=2)
        killed = dist.run(
            mode="process", kill_shard=1, kill_after_events=10
        )
        assert killed.killed_shards == [1]
        assert killed.report is None
        assert any(
            alert["kind"] == "shard-death" for alert in killed.alerts
        )
        resumed = dist.run(mode="process", resume=True)
        assert resumed.resumed_shards == [0, 1]
        assert resumed.merged_digest == clean.merged_digest
        # A resumed shard's log starts at its checkpoint, so the fold
        # referee is skipped — and must NOT fire a false divergence.
        assert resumed.fold_digest is None
        assert not any(
            alert["kind"] == "belief-divergence"
            for alert in resumed.alerts
        )
        assert resumed.report.to_json() == clean.report.to_json()

    def test_shard_count_clamps_to_fleet_size(
        self, alu_netlist, vega_library
    ):
        # More shards than devices: the session clamps to one shard
        # per device instead of spawning idle workers.
        config = CampaignConfig(
            devices=3, seed=11, silifuzz_snapshots=3,
            base_onset_years=6.0,
        )
        session = make_session(alu_netlist, vega_library, config=config)
        outcome = DistributedSession(session, shards=8).run(
            mode="process"
        )
        assert len(outcome.shards) == 3
        assert outcome.report is not None
        assert outcome.report.devices == 3
        assert outcome.fold_digest == outcome.merged_digest


# ---------------------------------------------------------------------
# Operational surface: heartbeats, alerts, metrics
# ---------------------------------------------------------------------
class TestAlertHub:
    def test_hooks_receive_alerts_and_failures_are_contained(self):
        received = []

        def good(alert):
            received.append(alert)

        def bad(alert):
            raise RuntimeError("hook exploded")

        hub = AlertHub([bad, good])
        alert = hub.fire("shard-stall", shard=3, stale_seconds=9.0)
        assert alert["kind"] == "shard-stall"
        assert received == [alert]
        assert hub.alerts == [alert]

    def test_webhook_hook_posts_json(self):
        posts = []

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                posts.append(json.loads(self.rfile.read(length)))
                self.send_response(200)
                self.end_headers()

            def log_message(self, *args):
                pass

        server = HTTPServer(("127.0.0.1", 0), Handler)
        thread = Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            hook = WebhookAlertHook(
                f"http://127.0.0.1:{server.server_address[1]}/alerts"
            )
            hub = AlertHub([hook])
            hub.fire("shard-death", shard=1)
            assert hook.delivered == 1 and hook.failed == 0
            assert posts == [{"kind": "shard-death", "shard": 1}]
        finally:
            server.shutdown()
            server.server_close()

    def test_webhook_failure_only_counts(self):
        hook = WebhookAlertHook("http://127.0.0.1:9/unreachable",
                                timeout=0.2)
        AlertHub([hook]).fire("shard-stall", shard=0)
        assert hook.failed == 1 and hook.delivered == 0


class TestHeartbeatMonitor:
    def test_silent_shard_trips_stall_alert(self):
        async def scenario():
            parent, child = socket.socketpair()
            spec = ShardSpec(
                index=0, shards=1, lo=0, hi=4,
                run_id="hb-test", checkpoint_key="k",
            )
            hub = AlertHub()
            handle = _ShardHandle(spec, FrameConn(parent), None)
            router = ShardRouter(
                [handle], hub, stale_after=0.05, check_interval=0.02
            )
            router.start()
            # The "worker" never sends a heartbeat.
            await asyncio.sleep(0.3)
            assert router.stale_shards() == [0]
            await router.close()
            child.close()
            return hub.alerts

        alerts = asyncio.run(scenario())
        assert any(a["kind"] == "shard-stall" for a in alerts)

    @needs_fork
    def test_live_run_emits_heartbeats(self, alu_netlist, vega_library):
        session = make_session(alu_netlist, vega_library)
        outcome = DistributedSession(session, shards=2).run(
            mode="process", heartbeat_interval=0.01
        )
        assert outcome.stats.get("heartbeats", 0) > 0


class TestPrometheusExport:
    def test_render_counters_and_gauges(self):
        text = render_prometheus(
            {"scheduler.ingest_accepted": 24, "scheduler.dispatches": 7},
            gauges=[
                ("scheduler.shard_tick", {"shard": "1"}, 3),
                ("scheduler.shard_tick", {"shard": "0"}, 5),
                ("scheduler.shards", {}, 2),
            ],
        )
        lines = text.splitlines()
        assert "# TYPE repro_scheduler_dispatches_total counter" in lines
        assert "repro_scheduler_dispatches_total 7" in lines
        assert "repro_scheduler_ingest_accepted_total 24" in lines
        # Label sets render sorted, so snapshots are deterministic.
        tick0 = lines.index('repro_scheduler_shard_tick{shard="0"} 5')
        tick1 = lines.index('repro_scheduler_shard_tick{shard="1"} 3')
        assert tick0 < tick1
        assert "repro_scheduler_shards 2" in lines

    def test_metrics_server_serves_snapshot(self):
        server = MetricsServer(
            lambda: "repro_test_metric 1\n", port=0
        ).start()
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            body = urllib.request.urlopen(url, timeout=5).read()
            assert body == b"repro_test_metric 1\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=5
                )
        finally:
            server.stop()

    @needs_fork
    def test_distributed_run_metrics_include_shard_counters(
        self, alu_netlist, vega_library
    ):
        with telemetry.use(telemetry.Telemetry(run_id="dist-metrics")):
            session = make_session(alu_netlist, vega_library)
            outcome = DistributedSession(session, shards=2).run(
                mode="process"
            )
        text = outcome.metrics_text
        assert "repro_scheduler_ingest_accepted_total" in text
        assert "repro_scheduler_dispatches_total" in text
        assert "repro_scheduler_shards 2" in text


# ---------------------------------------------------------------------
# Event-stream fold (the single-process referee)
# ---------------------------------------------------------------------
@needs_fork
class TestFoldEventStream:
    def test_fold_replays_concatenated_logs_exactly(
        self, alu_netlist, vega_library
    ):
        from repro.campaign.engine import DeviceRunner
        from repro.campaign.fleet import sample_fleet
        from repro.scheduler.replay import build_arms

        session = make_session(alu_netlist, vega_library)
        outcome = DistributedSession(session, shards=2).run(
            mode="process"
        )
        fleet = sample_fleet(CONFIG, MODELS, 6.0)
        runner = DeviceRunner(alu_netlist, "alu", CONFIG, vega_library)
        arms = build_arms(vega_library, runner)
        records = [
            json.loads(line)
            for line in outcome.concatenated_jsonl().splitlines()
        ]
        folded = fold_event_stream(
            fleet,
            sorted({m.label for m in MODELS}),
            SCHED,
            arms,
            records,
        )
        assert folded.digest() == outcome.merged_digest
