"""Software IEEE-754 binary16 arithmetic with status flags.

This is the repo's golden floating-point model: the ISA simulator uses
it to execute FPU instructions, Error Lifting uses it for expected
values, and the gate-level FPU of :mod:`repro.cpu.fpu_design` is tested
against it (which is itself cross-checked against ``numpy.float16``).

Supported: add, sub, mul, min, max, compares, int conversions —
round-to-nearest-even, subnormals, signed zeros, infinities, NaNs
(RISC-V canonical quiet NaN ``0x7E00``).

Flags follow RISC-V's ``fflags`` bit order: NV (invalid), DZ (divide by
zero — unused here), OF (overflow), UF (underflow), NX (inexact).
"""

from __future__ import annotations

from typing import Tuple

EXP_BITS = 5
MAN_BITS = 10
BIAS = 15
EXP_MAX = (1 << EXP_BITS) - 1  # 31
CANONICAL_NAN = 0x7E00
POS_INF = 0x7C00
NEG_INF = 0xFC00

FLAG_NV = 0x10
FLAG_DZ = 0x08
FLAG_OF = 0x04
FLAG_UF = 0x02
FLAG_NX = 0x01

#: Rounding modes (RISC-V encoding): round-to-nearest-even, toward
#: zero, down (toward -inf), up (toward +inf).
RM_RNE = 0
RM_RTZ = 1
RM_RDN = 2
RM_RUP = 3


def _should_round_up(sign: int, lsb: int, grs: int, rm: int) -> bool:
    """Rounding decision for a positive-magnitude significand."""
    if grs == 0:
        return False
    guard = (grs >> 2) & 1
    round_sticky = grs & 0b011
    if rm == RM_RTZ:
        return False
    if rm == RM_RDN:
        return bool(sign)
    if rm == RM_RUP:
        return not sign
    return bool(guard and (round_sticky or lsb))  # RNE


def _overflow_bits(sign: int, rm: int) -> int:
    """Overflowed result: infinity or max finite, by rounding mode."""
    max_finite = (sign << 15) | 0x7BFF
    inf = (sign << 15) | POS_INF
    if rm == RM_RTZ:
        return max_finite
    if rm == RM_RDN:
        return inf if sign else max_finite
    if rm == RM_RUP:
        return max_finite if sign else inf
    return inf  # RNE


def _fields(x: int) -> Tuple[int, int, int]:
    """(sign, exponent, mantissa) of a 16-bit pattern."""
    return (x >> 15) & 1, (x >> MAN_BITS) & EXP_MAX, x & ((1 << MAN_BITS) - 1)


def is_nan(x: int) -> bool:
    _, e, m = _fields(x)
    return e == EXP_MAX and m != 0


def is_signaling_nan(x: int) -> bool:
    _, e, m = _fields(x)
    return e == EXP_MAX and m != 0 and not (m >> (MAN_BITS - 1)) & 1


def is_inf(x: int) -> bool:
    _, e, m = _fields(x)
    return e == EXP_MAX and m == 0


def is_zero(x: int) -> bool:
    _, e, m = _fields(x)
    return e == 0 and m == 0


def _decompose(x: int) -> Tuple[int, int, int]:
    """(sign, unbiased-ish exponent, significand) for finite x.

    The significand carries the implicit bit for normal numbers; the
    exponent is the effective biased exponent (1 for subnormals).
    """
    s, e, m = _fields(x)
    if e == 0:
        return s, 1, m
    return s, e, m | (1 << MAN_BITS)


def _round_pack(
    sign: int, exp: int, sig: int, grs: int, rm: int = RM_RNE
) -> Tuple[int, int]:
    """Round per ``rm`` and assemble a float16.

    ``sig`` is an 11-bit significand (implicit bit at position 10) for a
    normal candidate, or smaller for subnormals; ``exp`` is the biased
    exponent (0 means subnormal).  ``grs`` holds guard/round/sticky in
    its low 3 bits.  Returns (bits, flags).
    """
    flags = 0
    inexact = grs != 0
    round_up = _should_round_up(sign, sig & 1, grs, rm)
    if round_up:
        sig += 1
        if sig >> (MAN_BITS + 1):  # mantissa overflow: 0x800
            sig >>= 1
            exp += 1
        if exp == 1 and sig >> MAN_BITS:
            # Subnormal rounded up into the normal range.
            pass
    if exp <= 0:
        # Should have been pre-shifted into exp==0 form by the caller.
        raise AssertionError("caller must deliver exp >= 0")
    if exp == 0 or not (sig >> MAN_BITS):
        # Subnormal (or zero) result.
        bits = (sign << 15) | (sig & ((1 << MAN_BITS) - 1))
        if inexact:
            flags |= FLAG_NX | FLAG_UF
        return bits, flags
    if exp >= EXP_MAX:
        return _overflow_bits(sign, rm), FLAG_OF | FLAG_NX
    bits = (sign << 15) | (exp << MAN_BITS) | (sig & ((1 << MAN_BITS) - 1))
    if inexact:
        flags |= FLAG_NX
    return bits, flags


def _norm_round_pack(
    sign: int, exp: int, sig: int, rm: int = RM_RNE
) -> Tuple[int, int]:
    """Normalize a (sign, biased exp, wide significand) and round.

    ``sig`` may be any width; ``exp`` is the biased exponent of the bit
    just above ``sig``'s bit 13 when interpreted as 1.xx with 3 GRS
    bits — callers deliver sig aligned so that bit 13 is the implicit
    position (value 1 <= sig < 2 means bit 13 set).
    """
    if sig == 0:
        return sign << 15, 0
    # Position of the leading one relative to bit 13 (implicit slot).
    shift = sig.bit_length() - 14
    if shift > 0:
        sticky = int(sig & ((1 << shift) - 1) != 0)
        sig = (sig >> shift) | sticky
        exp += shift
    elif shift < 0:
        sig <<= -shift
        exp += shift
    if exp <= 0:
        # Subnormal: shift right so exponent becomes 1, then encode
        # with biased exponent 0.
        denorm = 1 - exp
        if denorm > 14 + MAN_BITS:
            sticky = 1
            sig = 0
        else:
            sticky = int(sig & ((1 << denorm) - 1) != 0)
            sig >>= denorm
        sig |= sticky
        exp = 1
        grs = sig & 0b111
        sig >>= 3
        bits, flags = _round_pack(sign, exp, sig, grs, rm)
        # exp==1 with no implicit bit encodes as biased exponent 0.
        if not (sig >> MAN_BITS) and not ((bits >> MAN_BITS) & EXP_MAX):
            pass
        return bits, flags
    grs = sig & 0b111
    sig >>= 3
    return _round_pack(sign, exp, sig, grs, rm)


def fp16_add(
    a: int, b: int, subtract: bool = False, rm: int = RM_RNE
) -> Tuple[int, int]:
    """a + b (or a - b) under rounding mode ``rm``; returns (bits, flags)."""
    if subtract:
        b ^= 0x8000
    if is_nan(a) or is_nan(b):
        flags = FLAG_NV if (is_signaling_nan(a) or is_signaling_nan(b)) else 0
        return CANONICAL_NAN, flags
    if is_inf(a) or is_inf(b):
        if is_inf(a) and is_inf(b) and (a ^ b) >> 15:
            return CANONICAL_NAN, FLAG_NV
        return (a if is_inf(a) else b), 0
    sa, ea, siga = _decompose(a)
    sb, eb, sigb = _decompose(b)
    # Align onto a common exponent with 3 GRS bits of headroom.
    siga <<= 3
    sigb <<= 3
    if ea < eb or (ea == eb and siga < sigb):
        sa, ea, siga, sb, eb, sigb = sb, eb, sigb, sa, ea, siga
    diff = ea - eb
    if diff:
        if diff > 13:
            sigb = 1 if sigb else 0
        else:
            sticky = int(sigb & ((1 << diff) - 1) != 0)
            sigb = (sigb >> diff) | sticky
    if sa == sb:
        total = siga + sigb
        sign = sa
    else:
        total = siga - sigb
        sign = sa
        if total == 0:
            # Exact cancellation: +0 except RDN, which yields -0.
            return (0x8000 if rm == RM_RDN else 0), 0
    return _norm_round_pack(sign, ea, total, rm)


def fp16_mul(a: int, b: int, rm: int = RM_RNE) -> Tuple[int, int]:
    """a * b under rounding mode ``rm``; returns (bits, flags)."""
    if is_nan(a) or is_nan(b):
        flags = FLAG_NV if (is_signaling_nan(a) or is_signaling_nan(b)) else 0
        return CANONICAL_NAN, flags
    sign = ((a ^ b) >> 15) & 1
    if is_inf(a) or is_inf(b):
        if is_zero(a) or is_zero(b):
            return CANONICAL_NAN, FLAG_NV
        return (sign << 15) | POS_INF, 0
    if is_zero(a) or is_zero(b):
        return sign << 15, 0
    sa, ea, siga = _decompose(a)
    sb, eb, sigb = _decompose(b)
    product = siga * sigb  # up to 22 bits, implicit product bit at 20/21
    # Align: product of two 1.x significands (bit 10 implicit each) has
    # its unit at bit 20.  Delivering sig with implicit slot at bit 13
    # means exponent reference ea+eb-BIAS with unit at bit 20: shift
    # mentally handled by _norm_round_pack via bit_length.
    exp = ea + eb - BIAS - 7  # 20 - 13 = 7 positions above the slot
    return _norm_round_pack(sign, exp, product, rm)


def fp16_min(a: int, b: int) -> Tuple[int, int]:
    """RISC-V fmin.h semantics: NaN-aware minimum."""
    return _min_max(a, b, take_min=True)


def fp16_max(a: int, b: int) -> Tuple[int, int]:
    return _min_max(a, b, take_min=False)


def _min_max(a: int, b: int, take_min: bool) -> Tuple[int, int]:
    flags = FLAG_NV if (is_signaling_nan(a) or is_signaling_nan(b)) else 0
    if is_nan(a) and is_nan(b):
        return CANONICAL_NAN, flags
    if is_nan(a):
        return b, flags
    if is_nan(b):
        return a, flags
    # -0 < +0 for min/max purposes.
    a_lt_b = _signed_less(a, b)
    if take_min:
        return (a if a_lt_b or a == b else b), flags
    return (b if a_lt_b else a), flags


def _signed_less(a: int, b: int) -> bool:
    sa, sb = a >> 15, b >> 15
    if sa != sb:
        if is_zero(a) and is_zero(b):
            return sa == 1  # -0 < +0
        return sa == 1
    mag_a, mag_b = a & 0x7FFF, b & 0x7FFF
    if sa:
        return mag_a > mag_b
    return mag_a < mag_b


def fp16_eq(a: int, b: int) -> Tuple[int, int]:
    """feq.h: quiet comparison; NV only for signaling NaNs."""
    flags = FLAG_NV if (is_signaling_nan(a) or is_signaling_nan(b)) else 0
    if is_nan(a) or is_nan(b):
        return 0, flags
    if is_zero(a) and is_zero(b):
        return 1, flags
    return int(a == b), flags


def fp16_lt(a: int, b: int) -> Tuple[int, int]:
    """flt.h: signaling comparison; NV for any NaN.

    Unlike min/max ordering, IEEE comparisons treat +/-0 as equal.
    """
    if is_nan(a) or is_nan(b):
        return 0, FLAG_NV
    if is_zero(a) and is_zero(b):
        return 0, 0
    return int(_signed_less(a, b)), 0


def fp16_le(a: int, b: int) -> Tuple[int, int]:
    if is_nan(a) or is_nan(b):
        return 0, FLAG_NV
    if is_zero(a) and is_zero(b):
        return 1, 0
    return int(_signed_less(a, b) or a == b), 0


def fp16_from_int(value: int) -> Tuple[int, int]:
    """Convert a signed 32-bit integer to float16 (fcvt.h.w, RNE).

    ``_norm_round_pack`` interprets its significand with the implicit
    slot at bit 13 and value ``sig * 2^(exp - BIAS - 13)``; an integer
    magnitude therefore carries exponent ``BIAS + 13``.
    """
    value &= 0xFFFFFFFF
    sign = (value >> 31) & 1
    mag = ((~value + 1) & 0xFFFFFFFF) if sign else value
    if mag == 0:
        return 0, 0
    return _norm_round_pack(sign, BIAS + 13, mag)


def fp16_to_int(x: int) -> Tuple[int, int]:
    """Convert float16 to signed 32-bit integer (fcvt.w.h, RTZ).

    Out-of-range and NaN follow RISC-V: NaN -> 2^31-1 with NV; +/-inf
    saturate with NV.
    """
    if is_nan(x):
        return 0x7FFFFFFF, FLAG_NV
    s, e, m = _fields(x)
    if e == EXP_MAX:
        return (0x80000000 if s else 0x7FFFFFFF), FLAG_NV
    sign, exp, sig = _decompose(x)
    shift = exp - BIAS - MAN_BITS
    if shift >= 0:
        value = sig << shift
    else:
        value = sig >> -shift
        if sig & ((1 << -shift) - 1):
            # inexact truncation toward zero
            result = -value if sign else value
            return result & 0xFFFFFFFF, FLAG_NX
    result = -value if sign else value
    return result & 0xFFFFFFFF, 0


def fp16_value(x: int) -> float:
    """Python float view of a binary16 pattern (for tests/debugging)."""
    s, e, m = _fields(x)
    sign = -1.0 if s else 1.0
    if e == EXP_MAX:
        if m:
            return float("nan")
        return sign * float("inf")
    if e == 0:
        return sign * m * 2.0 ** (1 - BIAS - MAN_BITS)
    return sign * (m + (1 << MAN_BITS)) * 2.0 ** (e - BIAS - MAN_BITS)
