"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_workloads_lists_all(self):
        code, text = _run(["workloads"])
        assert code == 0
        assert text.count("\n") == 11
        assert "minver" in text and "crc32" in text and "matmult_hw" in text

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sta_alu(self):
        code, text = _run(["sta", "--unit", "alu"])
        assert code == 0
        assert "fresh violations: 0" in text
        assert "aged setup:" in text
        assert "~>" in text

    def test_inject_emits_verilog(self, tmp_path):
        out_file = tmp_path / "failing.v"
        code, text = _run(
            [
                "inject",
                "--unit", "alu",
                "--start", "a_q_r0",
                "--end", "res_q_r1",
                "--c", "1",
                "-o", str(out_file),
            ]
        )
        assert code == 0
        verilog = out_file.read_text()
        assert "module alu__fail" in verilog
        assert "MUX2" in verilog

    def test_suite_asm_artifact(self, tmp_path):
        out_file = tmp_path / "suite.s"
        code, _ = _run(
            ["suite", "--unit", "alu", "--format", "asm", "-o", str(out_file)]
        )
        assert code == 0
        asm = out_file.read_text()
        assert "ecall" in asm
        # The suite must assemble and pass on the golden backend.
        from repro.cpu.cpu import run_program

        result = run_program(asm)
        assert result.exit_value == 0

    def test_integrate_reports_overhead(self):
        code, text = _run(["integrate", "--workload", "minver", "--units", "alu"])
        assert code == 0
        assert "measured overhead" in text
        assert "result preserved: True" in text

    def test_models_exports_library(self, tmp_path):
        out_dir = tmp_path / "models"
        code, text = _run(["models", "--unit", "alu", "-o", str(out_dir)])
        assert code == 0
        import json

        index = json.loads((out_dir / "index.json").read_text())
        assert index["unit"] == "alu"
        assert index["models"]
        for entry in index["models"]:
            assert (out_dir / entry["file"]).exists()
        # Suite artifacts came along.
        assert any(p.suffix == ".c" for p in out_dir.iterdir())

    def test_verify_alu_roundtrip_and_optimizer(self):
        code, text = _run(["verify", "--unit", "alu", "--depth", "2"])
        assert code == 0
        assert "round-trip equivalent: True" in text
        assert "optimizer" in text


class TestRunAndTrace:
    def test_run_traces_and_resumes(self, tmp_path):
        from repro.core import telemetry

        cache = str(tmp_path / "cache")
        trace = str(tmp_path / "out.jsonl")
        argv = ["run", "--unit", "alu", "--cache-dir", cache]

        code, text = _run(argv + ["--trace", trace, "--metrics"])
        assert code == 0
        assert "Vega workflow report" in text
        assert f"trace written to {trace}" in text
        assert "# Vega run metrics" in text
        # The written trace is valid JSONL covering all three phases.
        records = telemetry.read_trace(trace)
        phases = {
            r["name"]
            for r in records
            if r["type"] == "span" and r.get("parent") is None
        }
        assert phases == {
            "phase1.aging_analysis",
            "phase2.error_lifting",
            "phase3.test_integration",
        }

        # Second invocation resumes every phase from its checkpoint.
        code, text = _run(argv + ["--resume"])
        assert code == 0
        assert (
            "resumed from checkpoints: phase1, phase2, phase3" in text
        )

        # The standalone summarizer renders the written trace.
        code, text = _run(["trace", "summarize", trace])
        assert code == 0
        assert "## Phases" in text
        assert "phase2.error_lifting" in text

    def test_resume_requires_cache(self):
        code, _ = _run(["run", "--unit", "alu", "--resume", "--no-cache"])
        assert code == 2

    def test_summarize_rejects_invalid_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json}\n")
        code, _ = _run(["trace", "summarize", str(bad)])
        assert code == 1
        code, _ = _run(["trace", "summarize", str(tmp_path / "missing")])
        assert code == 1


class TestCampaignCli:
    def test_campaign_run_and_report(self, tmp_path):
        report_file = str(tmp_path / "campaign.json")
        code, text = _run(
            [
                "campaign", "run",
                "--unit", "alu",
                "--devices", "4",
                "--shard-size", "2",
                "--onset-years", "6",
                "--report", report_file,
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "campaign: alu fleet of 4" in text
        assert f"report written to {report_file}" in text

        code, text = _run(["campaign", "report", report_file])
        assert code == 0
        assert "# Campaign report" in text
        assert "## Detection coverage" in text

        # Re-running with --resume recomputes nothing.
        code, text = _run(
            [
                "campaign", "run",
                "--unit", "alu",
                "--devices", "4",
                "--shard-size", "2",
                "--onset-years", "6",
                "--resume",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "resumed 2 shard(s) from checkpoints; executed 0" in text

    def test_campaign_resume_requires_cache(self):
        code, _ = _run(
            ["campaign", "run", "--resume", "--no-cache"]
        )
        assert code == 2

    def test_campaign_report_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json}")
        code, _ = _run(["campaign", "report", str(bad)])
        assert code == 1
        code, _ = _run(
            ["campaign", "report", str(tmp_path / "missing.json")]
        )
        assert code == 1


class TestTraceSummarizeEmpty:
    def test_empty_trace_file_reports_no_spans(self, tmp_path):
        """An empty trace gets a clear verdict, not a JSON traceback."""
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, _ = _run(["trace", "summarize", str(empty)])
        assert code == 1  # CI relies on non-zero exit for empty traces

    def test_header_only_trace_prints_no_spans_recorded(self, tmp_path):
        """A meta-only trace (run died before any span closed) renders
        the "no spans recorded" verdict instead of an empty table."""
        import json

        header_only = tmp_path / "header.jsonl"
        header_only.write_text(
            json.dumps({"type": "meta", "schema": 1, "run_id": "t"}) + "\n"
        )
        code, text = _run(["trace", "summarize", str(header_only)])
        assert code == 0
        assert "no spans recorded" in text
        assert "## Phases" not in text

    def test_header_and_counters_still_summarize(self, tmp_path):
        import json

        trace = tmp_path / "counters.jsonl"
        trace.write_text(
            json.dumps({"type": "meta", "schema": 1, "run_id": "t"})
            + "\n"
            + json.dumps({"type": "counters", "counters": {"x": 3}})
            + "\n"
        )
        code, text = _run(["trace", "summarize", str(trace)])
        assert code == 0
        assert "no spans recorded" in text
        assert "## Counters" in text


class TestSchedulerCli:
    def test_schedule_reports_and_logs(self, tmp_path):
        log_file = str(tmp_path / "events.jsonl")
        report_file = str(tmp_path / "schedule.json")
        code, text = _run(
            [
                "schedule",
                "--unit", "alu",
                "--devices", "4",
                "--onset-years", "6",
                "--policy", "thompson",
                "--log", log_file,
                "--report", report_file,
                "--verify-replay",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "scheduler report" in text
        assert "replay: byte-identical" in text

        # The event log is a valid TRACE_SCHEMA trace the summarizer
        # renders directly.
        code, text = _run(["trace", "summarize", log_file])
        assert code == 0
        assert "scheduler.dispatch" in text

        from repro.scheduler import ScheduleReport

        report = ScheduleReport.from_json(open(report_file).read())
        assert report.devices == 4
        assert report.policy == "thompson"

    def test_serve_kill_then_resume(self, tmp_path):
        cache = str(tmp_path / "cache")
        argv = [
            "serve",
            "--unit", "alu",
            "--devices", "4",
            "--onset-years", "6",
            "--checkpoint-every", "2",
            "--cache-dir", cache,
        ]
        # First tick ingests all 4 device results and checkpoints (at
        # events=4 with --checkpoint-every 2); the kill at event 5
        # lands after it, so the resume has something to load.
        code, text = _run(argv + ["--kill-after", "5"])
        assert code == 0
        assert "service killed" in text

        code, text = _run(argv + ["--resume"])
        assert code == 0
        assert "service drained" in text
        assert "resumed from belief checkpoint" in text

    @pytest.mark.skipif(
        not hasattr(__import__("os"), "fork"),
        reason="multi-process shards need os.fork",
    )
    def test_serve_distributed_kill_resume_and_digest(self, tmp_path):
        argv = [
            "serve",
            "--unit", "alu",
            "--devices", "4",
            "--onset-years", "6",
            "--shards", "2",
            # Generous staleness threshold: a loaded CI box must not
            # trip stall alerts during a healthy smoke run.
            "--stale-after", "30",
        ]
        clean_cache = str(tmp_path / "clean")
        code, text = _run(argv + ["--cache-dir", clean_cache])
        assert code == 0
        assert "distributed service drained" in text
        assert "event-stream fold digest matches: yes" in text
        digest_line = next(
            line for line in text.splitlines()
            if "merged belief digest:" in line
        )

        cache = str(tmp_path / "drill")
        code, text = _run(
            argv + ["--cache-dir", cache, "--kill-shard", "1",
                    "--kill-after", "2"]
        )
        assert code == 0
        assert "shard 1: KILLED" in text

        code, text = _run(argv + ["--cache-dir", cache, "--resume"])
        assert code == 0
        assert "distributed service drained" in text
        # Resumed shards log only post-checkpoint events; the fold
        # referee is skipped, never reported as divergence.
        assert "skipped (resumed from checkpoints)" in text
        assert "DIVERGED" not in text
        assert digest_line in text

    def test_serve_kill_shard_requires_shards(self):
        code, _ = _run(
            ["serve", "--unit", "alu", "--kill-shard", "0"]
        )
        assert code == 2

    def test_unknown_policy_rejected(self):
        code, _ = _run(
            ["schedule", "--unit", "alu", "--policy", "nonesuch"]
        )
        assert code == 2

    def test_serve_resume_requires_cache(self):
        code, _ = _run(["serve", "--unit", "alu", "--resume", "--no-cache"])
        assert code == 2

    def test_surrogate_triage_missing_model_exits_2(self, capsys):
        code, _ = _run(
            ["surrogate", "triage", "--unit", "alu",
             "--model", "/nonexistent/model.json"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot load model" in err

    def test_surrogate_validate_rejects_bad_snapshot(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "model.json"
        bad.write_text('{"schema": 99}')
        code, _ = _run(
            ["surrogate", "validate", "--unit", "alu",
             "--model", str(bad)]
        )
        assert code == 2
        assert "schema" in capsys.readouterr().err

    def test_surrogate_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["surrogate"])
