"""Table 4 — test-case construction outcomes (S / UR / FF / FC).

Paper shape: most endpoint pairs either yield a test case (S) or are
formally proven unable to cause an observable error (UR); formal
timeouts (FF) and unconvertible witnesses (FC) are rare and FPU-only.
Enabling the §3.3.4 mitigation lowers the S percentage (edge-qualified
models are strictly harder to activate) while producing more tests.
"""

from repro.lifting.lifter import ErrorLifter


def test_table4_construction_outcomes(ctx, benchmark, recorder):
    rows = ["Unit | Mitigation | S% | UR% | FF% | FC% | pairs"]
    data = {}
    for unit_name in ("alu", "fpu"):
        unit = ctx.unit(unit_name)
        for mitigation in (False, True):
            report = unit.lifting(mitigation)
            pct = report.outcome_percentages()
            data[(unit_name, mitigation)] = pct
            rows.append(
                f"{unit_name.upper():4s} | {'w/ ' if mitigation else 'w/o'}       "
                f"| {pct['S']:5.1f} | {pct['UR']:5.1f} | {pct['FF']:5.1f} "
                f"| {pct['FC']:5.1f} | {len(report.pairs)}"
            )
            for outcome in ("S", "UR", "FF", "FC"):
                recorder.sample(
                    "table4_construction", f"outcome_{outcome.lower()}_pct",
                    pct[outcome], "percent", unit=unit_name,
                    mitigation=mitigation,
                    bigger_is_better=outcome in ("S", "UR"),
                )
            recorder.sample(
                "table4_construction", "endpoint_pairs", len(report.pairs),
                "pairs", unit=unit_name, mitigation=mitigation,
                bigger_is_better=True,
            )
    recorder.table("table4_construction", "\n".join(rows))

    for unit_name in ("alu", "fpu"):
        without = data[(unit_name, False)]
        with_m = data[(unit_name, True)]
        # S and UR dominate; failures are the exception.
        assert without["S"] + without["UR"] >= 80.0
        # Mitigation never increases the S rate (its models are a
        # strict subset of the base model's activation conditions).
        assert with_m["S"] <= without["S"] + 1e-9
        # Something constructs for every unit.
        assert without["S"] > 0
    # UR outcomes exist: violating paths that start at flops standard
    # software can never toggle (SIMD mode / rounding mode) are proven
    # unrealizable, mirroring the paper's 33-44% UR rates.
    assert data[("fpu", False)]["UR"] > 0 or data[("alu", False)]["UR"] > 0

    # Benchmark: lift one representative ALU pair end to end.
    unit = ctx.alu
    violation = unit.sta_result.report.representative_violations()[0]
    lifter = ErrorLifter(unit.netlist, ctx.config.lifting, unit.mapper)
    result = benchmark(lifter.lift_pair, violation)
    assert result.variants
