"""Artifact export: the circuit-level failure-model library.

The paper's third contribution: "We provide a set of circuit-level
failure models for the analyzed hardware to facilitate future research
into silent data corruptions."  Those models are the *failing netlists*
produced by failure-model instrumentation — standalone Verilog files
that behave like the aged circuit and can be simulated or mapped to an
FPGA.

:func:`export_failure_models` writes one ``.v`` per (endpoint pair, C
mode) plus a JSON index describing each model's violation, trigger
condition, and provenance; :func:`export_suite_artifacts` writes the
software side (assembly suite, C library, spliceable routine).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..integration.library_gen import AgingLibrary
from ..lifting.instrument import FailingNetlist


@dataclass
class ArtifactIndex:
    """Manifest of an exported artifact directory."""

    unit: str
    netlist_name: str
    models: List[Dict] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(
            {
                "unit": self.unit,
                "netlist": self.netlist_name,
                "models": self.models,
                "files": self.files,
            },
            indent=2,
        )


def export_failure_models(
    failing: Sequence[FailingNetlist],
    directory: str,
    unit: str = "unit",
) -> ArtifactIndex:
    """Write each failing netlist as Verilog plus a JSON manifest.

    Returns the index (also written as ``index.json``).
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    index = ArtifactIndex(
        unit=unit,
        netlist_name=failing[0].netlist.name.split("__")[0] if failing else "",
    )
    for model in failing:
        filename = f"{model.model.label}.v"
        (out_dir / filename).write_text(model.to_verilog())
        index.files.append(filename)
        index.models.append(
            {
                "file": filename,
                "kind": model.model.kind.value,
                "start": model.model.start,
                "end": model.model.end,
                "c_mode": model.model.c_mode.value,
                "edge": model.model.edge.value,
                "cells": model.netlist.stats()["_cells"],
            }
        )
    (out_dir / "index.json").write_text(index.to_json())
    return index


def export_suite_artifacts(
    library: AgingLibrary,
    directory: str,
) -> List[str]:
    """Write the software aging library's three artifact flavours."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in (
        (f"{library.name}.s", library.suite_source()),
        (f"{library.name}.c", library.c_source()),
        (f"{library.name}_routine.s", library.routine_source()),
    ):
        (out_dir / name).write_text(text)
        written.append(name)
    return written
