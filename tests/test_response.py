"""Tests for fault-response strategies (detect -> mitigate loop)."""

import pytest

from repro.core.config import ErrorLiftingConfig, TestIntegrationConfig
from repro.cpu.alu_design import build_alu
from repro.cpu.cosim import GateAluBackend
from repro.cpu.cpu import run_program
from repro.cpu.mappers import AluMapper
from repro.integration.library_gen import AgingLibrary
from repro.integration.profile import ProfileGuidedIntegrator
from repro.integration.response import (
    FallbackResponse,
    FaultAction,
    RetireResponse,
    RetryResponse,
    run_with_protection,
)
from repro.lifting.instrument import make_failing_netlist
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.sta.timing import TimingViolation
APP = """
    li s0, 0
    li s1, 24
outer:
    li s2, 40
inner:
    add s0, s0, s2
    xor s0, s0, s1
    addi s2, s2, -1
    bnez s2, inner
    addi s1, s1, -1
    bnez s1, outer
    mv a0, s0
    ecall
"""


@pytest.fixture(scope="module")
def protected_app():
    """A small loop kernel spliced with a real lifted ALU test suite.

    The generous overhead budget keeps the tests ungated so every run
    deterministically executes them (the Figure 9 benchmarks cover the
    gated regime on full-size workloads).  The budget is measured
    against the empirically costed call site, which on this tiny kernel
    is a little under 1x the application itself.
    """
    lifter = ErrorLifter(build_alu(), ErrorLiftingConfig(), AluMapper())
    violation = TimingViolation(
        "setup", "a_q_r0", "res_q_r31", ("u",), 6.1, 6.0
    )
    library = AgingLibrary(
        name="prot", test_cases=lifter.lift_pair(violation).test_cases
    )
    integrator = ProfileGuidedIntegrator(
        library, TestIntegrationConfig(overhead_threshold=2.0)
    )
    app = integrator.integrate(APP)
    assert not app.plan.gated  # tests run on every visit
    return app


@pytest.fixture(scope="module")
def failing_alu():
    model = FailureModel(
        "a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE
    )
    return make_failing_netlist(build_alu(), model).netlist


class TestCleanRun:
    def test_no_fault_no_action(self, protected_app):
        outcome = run_with_protection(protected_app, "alu")
        assert outcome.action is FaultAction.NONE
        assert outcome.completed
        assert outcome.incidents == []
        baseline = run_program(APP)
        assert outcome.result.exit_value == baseline.exit_value


class TestRetire:
    def test_fault_retires_unit(self, protected_app, failing_alu):
        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": GateAluBackend(failing_alu)},
            policy=RetireResponse(),
        )
        assert outcome.action is FaultAction.RETIRED
        assert not outcome.completed
        assert outcome.incidents[0].detail.startswith("unit retired")


class TestRetry:
    def test_persistent_fault_escalates(self, protected_app, failing_alu):
        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": GateAluBackend(failing_alu)},
            policy=RetryResponse(),
        )
        # The injected failure is persistent: retry sees it again.
        assert outcome.action is FaultAction.RETIRED
        assert len(outcome.incidents) == 2
        assert "recurred" in outcome.incidents[0].detail

    def test_retry_can_escalate_to_fallback(self, protected_app, failing_alu):
        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": GateAluBackend(failing_alu)},
            policy=RetryResponse(escalate=FallbackResponse()),
        )
        assert outcome.action is FaultAction.FELL_BACK
        assert outcome.completed

    def test_transient_fault_clears_on_retry(self, protected_app, failing_alu):
        # Measure the exact ALU-operation count of one (faulty) run so
        # the flaky backend corrupts precisely the first execution.
        probe = GateAluBackend(failing_alu)
        protected_app.run(alu=probe)
        ops_first_run = probe.operations

        class FlakyOnce:
            """Failing netlist for the first run, healthy afterwards."""

            def __init__(self):
                self.bad = GateAluBackend(failing_alu)
                self.calls = 0

            def execute(self, op, a, b):
                from repro.cpu.alu_design import alu_reference

                self.calls += 1
                if self.calls <= ops_first_run:
                    return self.bad.execute(op, a, b)
                return alu_reference(op, a, b)

        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": FlakyOnce()},
            policy=RetryResponse(),
        )
        assert outcome.action is FaultAction.TRANSIENT
        assert outcome.completed


class TestFallback:
    def test_software_emulation_recovers_result(
        self, protected_app, failing_alu
    ):
        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": GateAluBackend(failing_alu)},
            policy=FallbackResponse(),
        )
        assert outcome.action is FaultAction.FELL_BACK
        assert outcome.completed
        baseline = run_program(APP)
        assert outcome.result.exit_value == baseline.exit_value
        assert outcome.incidents[0].detail.startswith("alu emulated")

    def test_fallback_is_default_policy(self, protected_app, failing_alu):
        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": GateAluBackend(failing_alu)},
        )
        assert outcome.action is FaultAction.FELL_BACK


class TestCampaignDevices:
    """Response policies driven by campaign-sampled faulty devices.

    The fleet sampler assigns each faulty device a failure model and a
    backend seed; these tests wire those devices into the protected
    application and assert the incident trail each policy leaves for
    persistent vs transient faults.
    """

    @pytest.fixture(scope="class")
    def faulty_devices(self):
        from repro.campaign import sample_fleet
        from repro.core.config import CampaignConfig

        model = FailureModel(
            "a_q_r0", "res_q_r31", ViolationKind.SETUP, CMode.ONE
        )
        config = CampaignConfig(
            devices=6, seed=11, base_onset_years=6.0
        )
        fleet = sample_fleet(config, [model], 6.0)
        faulty = [spec for spec in fleet if spec.faulty]
        assert faulty, "fixture fleet must contain faulty devices"
        return faulty

    @pytest.fixture(scope="class")
    def device_backend(self, faulty_devices, failing_alu):
        spec = faulty_devices[0]
        return GateAluBackend(failing_alu, seed=spec.backend_seed)

    def test_persistent_fault_trail(
        self, protected_app, faulty_devices, failing_alu
    ):
        # Every faulty device's injection is persistent: retry sees the
        # fault again and escalates to retirement.
        for spec in faulty_devices[:2]:
            outcome = run_with_protection(
                protected_app,
                "alu",
                backends={
                    "alu": GateAluBackend(
                        failing_alu, seed=spec.backend_seed
                    )
                },
                policy=RetryResponse(),
            )
            assert outcome.action is FaultAction.RETIRED
            assert [i.action for i in outcome.incidents] == [
                FaultAction.RETIRED,
                FaultAction.RETIRED,
            ]
            assert "recurred" in outcome.incidents[0].detail
            assert not outcome.completed

    def test_transient_fault_trail(
        self, protected_app, faulty_devices, failing_alu
    ):
        # A device whose marginal path trips once (environmental noise,
        # §6.2) and then holds: faulty backend first run, healthy after.
        spec = faulty_devices[0]
        probe = GateAluBackend(failing_alu, seed=spec.backend_seed)
        protected_app.run(alu=probe)
        ops_first_run = probe.operations

        class SettlesAfterFirstRun:
            def __init__(self):
                self.bad = GateAluBackend(failing_alu, seed=spec.backend_seed)
                self.calls = 0

            def execute(self, op, a, b):
                from repro.cpu.alu_design import alu_reference

                self.calls += 1
                if self.calls <= ops_first_run:
                    return self.bad.execute(op, a, b)
                return alu_reference(op, a, b)

        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": SettlesAfterFirstRun()},
            policy=RetryResponse(),
        )
        assert outcome.action is FaultAction.TRANSIENT
        assert outcome.completed
        assert [i.action for i in outcome.incidents] == [
            FaultAction.TRANSIENT
        ]
        assert "did not recur" in outcome.incidents[0].detail

    def test_fallback_recovers_device_result(
        self, protected_app, device_backend
    ):
        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": device_backend},
            policy=FallbackResponse(),
        )
        assert outcome.action is FaultAction.FELL_BACK
        assert outcome.completed
        baseline = run_program(APP)
        assert outcome.result.exit_value == baseline.exit_value
        assert [i.action for i in outcome.incidents] == [
            FaultAction.FELL_BACK
        ]

    def test_retire_halts_device(self, protected_app, device_backend):
        outcome = run_with_protection(
            protected_app,
            "alu",
            backends={"alu": device_backend},
            policy=RetireResponse(),
        )
        assert outcome.action is FaultAction.RETIRED
        assert not outcome.completed
        assert [i.action for i in outcome.incidents] == [
            FaultAction.RETIRED
        ]
