"""Tests for the software binary16 model, cross-checked against numpy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import float16 as f16

bits16 = st.integers(min_value=0, max_value=0xFFFF)

SPECIALS = [
    0x0000, 0x8000,  # +/- zero
    0x7C00, 0xFC00,  # +/- inf
    0x7E00,          # canonical quiet NaN
    0x7D01,          # signaling NaN
    0x0001, 0x8001,  # smallest subnormals
    0x03FF,          # largest subnormal
    0x0400,          # smallest normal
    0x7BFF, 0xFBFF,  # +/- max finite
    0x3C00, 0xBC00,  # +/- 1.0
]


def _np(op, a, b):
    fa = np.uint16(a).view(np.float16)
    fb = np.uint16(b).view(np.float16)
    with np.errstate(all="ignore"):
        if op == "add":
            r = np.float16(fa + fb)
        elif op == "sub":
            r = np.float16(fa - fb)
        else:
            r = np.float16(fa * fb)
    return int(r.view(np.uint16))


class TestArithmeticVsNumpy:
    @given(a=bits16, b=bits16)
    @settings(max_examples=400, deadline=None)
    def test_add_matches_numpy(self, a, b):
        mine, _ = f16.fp16_add(a, b)
        ref = _np("add", a, b)
        if f16.is_nan(mine) and f16.is_nan(ref):
            return
        assert mine == ref

    @given(a=bits16, b=bits16)
    @settings(max_examples=400, deadline=None)
    def test_sub_matches_numpy(self, a, b):
        mine, _ = f16.fp16_add(a, b, subtract=True)
        ref = _np("sub", a, b)
        if f16.is_nan(mine) and f16.is_nan(ref):
            return
        assert mine == ref

    @given(a=bits16, b=bits16)
    @settings(max_examples=400, deadline=None)
    def test_mul_matches_numpy(self, a, b):
        mine, _ = f16.fp16_mul(a, b)
        ref = _np("mul", a, b)
        if f16.is_nan(mine) and f16.is_nan(ref):
            return
        assert mine == ref

    @pytest.mark.parametrize("a", SPECIALS)
    @pytest.mark.parametrize("b", SPECIALS)
    def test_specials_cross_product(self, a, b):
        for op, fn in [
            ("add", lambda: f16.fp16_add(a, b)),
            ("sub", lambda: f16.fp16_add(a, b, subtract=True)),
            ("mul", lambda: f16.fp16_mul(a, b)),
        ]:
            mine, _ = fn()
            ref = _np(op, a, b)
            if f16.is_nan(mine) and f16.is_nan(ref):
                continue
            assert mine == ref, f"{op}({a:#06x}, {b:#06x})"


class TestFlags:
    def test_overflow_sets_of_nx(self):
        _, flags = f16.fp16_add(0x7BFF, 0x7BFF)  # max + max -> inf
        assert flags & f16.FLAG_OF
        assert flags & f16.FLAG_NX

    def test_underflow_sets_uf_nx(self):
        _, flags = f16.fp16_mul(0x0001, 0x0001)
        assert flags & f16.FLAG_UF
        assert flags & f16.FLAG_NX

    def test_invalid_on_inf_minus_inf(self):
        bits, flags = f16.fp16_add(0x7C00, 0xFC00)
        assert f16.is_nan(bits)
        assert flags & f16.FLAG_NV

    def test_invalid_on_inf_times_zero(self):
        bits, flags = f16.fp16_mul(0x7C00, 0x0000)
        assert f16.is_nan(bits)
        assert flags & f16.FLAG_NV

    def test_exact_operations_raise_nothing(self):
        _, flags = f16.fp16_add(0x3C00, 0x3C00)  # 1 + 1 = 2 exactly
        assert flags == 0
        _, flags = f16.fp16_mul(0x4000, 0x3800)  # 2 * 0.5 = 1 exactly
        assert flags == 0

    def test_signaling_nan_raises_nv(self):
        _, flags = f16.fp16_add(0x7D01, 0x3C00)
        assert flags & f16.FLAG_NV
        _, flags = f16.fp16_eq(0x7D01, 0x3C00)
        assert flags & f16.FLAG_NV

    def test_quiet_nan_compare_quietly(self):
        value, flags = f16.fp16_eq(0x7E00, 0x3C00)
        assert value == 0 and flags == 0
        value, flags = f16.fp16_lt(0x7E00, 0x3C00)
        assert value == 0 and flags & f16.FLAG_NV  # lt is signaling


class TestComparisons:
    @given(a=bits16, b=bits16)
    @settings(max_examples=300, deadline=None)
    def test_compare_matches_python_floats(self, a, b):
        fa, fb = f16.fp16_value(a), f16.fp16_value(b)
        if math.isnan(fa) or math.isnan(fb):
            assert f16.fp16_eq(a, b)[0] == 0
            assert f16.fp16_lt(a, b)[0] == 0
            assert f16.fp16_le(a, b)[0] == 0
            return
        assert f16.fp16_eq(a, b)[0] == int(fa == fb)
        assert f16.fp16_lt(a, b)[0] == int(fa < fb)
        assert f16.fp16_le(a, b)[0] == int(fa <= fb)

    def test_zero_signs_compare_equal(self):
        assert f16.fp16_eq(0x0000, 0x8000)[0] == 1
        assert f16.fp16_lt(0x8000, 0x0000)[0] == 0
        assert f16.fp16_le(0x8000, 0x0000)[0] == 1


class TestMinMax:
    def test_nan_yields_other_operand(self):
        assert f16.fp16_min(0x7E00, 0x3C00)[0] == 0x3C00
        assert f16.fp16_max(0x3C00, 0x7E00)[0] == 0x3C00

    def test_both_nan_yields_canonical(self):
        assert f16.fp16_min(0x7E00, 0x7F00)[0] == f16.CANONICAL_NAN

    def test_negative_zero_ordering(self):
        """RISC-V: min(+0,-0) = -0, max(-0,+0) = +0."""
        assert f16.fp16_min(0x0000, 0x8000)[0] == 0x8000
        assert f16.fp16_max(0x8000, 0x0000)[0] == 0x0000

    @given(a=bits16, b=bits16)
    @settings(max_examples=200, deadline=None)
    def test_min_le_max(self, a, b):
        lo, _ = f16.fp16_min(a, b)
        hi, _ = f16.fp16_max(a, b)
        if f16.is_nan(a) or f16.is_nan(b):
            return
        assert f16.fp16_le(lo, hi)[0] == 1


class TestConversions:
    @given(v=st.integers(min_value=-70000, max_value=70000))
    @settings(max_examples=200, deadline=None)
    def test_from_int_matches_numpy(self, v):
        mine, _ = f16.fp16_from_int(v)
        with np.errstate(all="ignore"):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ref = int(np.float16(v).view(np.uint16))
        assert mine == ref

    @given(a=bits16)
    @settings(max_examples=200, deadline=None)
    def test_to_int_truncates_toward_zero(self, a):
        value, flags = f16.fp16_to_int(a)
        fa = f16.fp16_value(a)
        if math.isnan(fa):
            assert value == 0x7FFFFFFF and flags & f16.FLAG_NV
            return
        if math.isinf(fa):
            assert flags & f16.FLAG_NV
            return
        expected = int(fa)  # Python truncates toward zero
        signed = value - (1 << 32) if value >> 31 else value
        assert signed == expected

    def test_roundtrip_small_ints(self):
        for v in range(-512, 513):
            bits, _ = f16.fp16_from_int(v)
            back, _ = f16.fp16_to_int(bits)
            signed = back - (1 << 32) if back >> 31 else back
            assert signed == v
