"""Tseitin encoding of gate-level netlists into CNF.

Each cell type contributes the standard equivalence clauses relating its
output variable to its input variables.  The encoder works per-cycle for
the bounded model checker, which aliases DFF outputs across time frames.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..netlist.netlist import Instance
from .sat import SatSolver


class EncodingError(Exception):
    """Raised when a cell type has no CNF model."""


def encode_instance(
    solver: SatSolver,
    inst: Instance,
    var_of: Dict[str, int],
) -> None:
    """Add the clauses defining ``inst``'s output from its inputs.

    ``var_of`` maps net names (of the current time frame) to solver
    variables; the output variable must already be allocated.
    """
    name = inst.ctype.name
    if inst.ctype.is_seq:
        raise EncodingError(
            "DFFs are handled by the unroller (frame aliasing), not by "
            "per-frame encoding"
        )
    y = var_of[inst.output_net.name]
    ins = [var_of[n.name] for n in inst.input_nets()]

    if name in ("BUF", "CLKBUF"):
        a = ins[0]
        solver.add_clause([-a, y])
        solver.add_clause([a, -y])
    elif name == "INV":
        a = ins[0]
        solver.add_clause([a, y])
        solver.add_clause([-a, -y])
    elif name == "AND2":
        a, b = ins
        solver.add_clause([-y, a])
        solver.add_clause([-y, b])
        solver.add_clause([y, -a, -b])
    elif name == "AND3":
        a, b, c = ins
        solver.add_clause([-y, a])
        solver.add_clause([-y, b])
        solver.add_clause([-y, c])
        solver.add_clause([y, -a, -b, -c])
    elif name == "OR2":
        a, b = ins
        solver.add_clause([y, -a])
        solver.add_clause([y, -b])
        solver.add_clause([-y, a, b])
    elif name == "NAND2":
        a, b = ins
        solver.add_clause([y, a])
        solver.add_clause([y, b])
        solver.add_clause([-y, -a, -b])
    elif name == "NOR2":
        a, b = ins
        solver.add_clause([-y, -a])
        solver.add_clause([-y, -b])
        solver.add_clause([y, a, b])
    elif name == "XOR2":
        a, b = ins
        solver.add_clause([-y, a, b])
        solver.add_clause([-y, -a, -b])
        solver.add_clause([y, -a, b])
        solver.add_clause([y, a, -b])
    elif name == "XNOR2":
        a, b = ins
        solver.add_clause([y, a, b])
        solver.add_clause([y, -a, -b])
        solver.add_clause([-y, -a, b])
        solver.add_clause([-y, a, -b])
    elif name == "MUX2":
        a, b, s = ins
        solver.add_clause([-s, -b, y])
        solver.add_clause([-s, b, -y])
        solver.add_clause([s, -a, y])
        solver.add_clause([s, a, -y])
        # Redundant but propagation-strengthening clauses.
        solver.add_clause([-a, -b, y])
        solver.add_clause([a, b, -y])
    elif name == "TIE0":
        solver.add_clause([-y])
    elif name == "TIE1":
        solver.add_clause([y])
    else:
        raise EncodingError(f"no CNF model for cell type {name!r}")


def encode_equal(solver: SatSolver, a: int, b: int) -> None:
    """Constrain two variables to be equal."""
    solver.add_clause([-a, b])
    solver.add_clause([a, -b])


def encode_xor_var(solver: SatSolver, a: int, b: int) -> int:
    """Allocate and return d with d <-> (a xor b)."""
    d = solver.new_var()
    solver.add_clause([-d, a, b])
    solver.add_clause([-d, -a, -b])
    solver.add_clause([d, -a, b])
    solver.add_clause([d, a, -b])
    return d


def encode_fixed_value(
    solver: SatSolver, bit_vars: Sequence[int], value: int
) -> None:
    """Pin a vector of variables to an integer constant (LSB first)."""
    for i, var in enumerate(bit_vars):
        if (value >> i) & 1:
            solver.add_clause([var])
        else:
            solver.add_clause([-var])


def encode_in_set(
    solver: SatSolver, bit_vars: Sequence[int], allowed: Sequence[int]
) -> None:
    """Constrain a bit vector to one of ``allowed`` values.

    This is the CNF backing for ``assume property`` restrictions such
    as "the ALU opcode is a valid operation" (§3.3.3).  Encoded with
    one selector variable per allowed value.
    """
    width = len(bit_vars)
    allowed = sorted(set(v & ((1 << width) - 1) for v in allowed))
    if not allowed:
        raise ValueError("allowed set must not be empty")
    if len(allowed) == 1 << width:
        return  # unconstrained
    selectors = []
    for value in allowed:
        sel = solver.new_var()
        selectors.append(sel)
        for i, var in enumerate(bit_vars):
            lit = var if (value >> i) & 1 else -var
            solver.add_clause([-sel, lit])
    solver.add_clause(selectors)
    # Conversely, matching a value forces its selector (keeps models
    # honest for trace extraction; one direction suffices logically).
    for sel, value in zip(selectors, allowed):
        mismatch = [
            (-var if (value >> i) & 1 else var)
            for i, var in enumerate(bit_vars)
        ]
        solver.add_clause([sel] + mismatch)
