"""Fault-parallel packed campaign prefilter.

The serial campaign evaluates one (device, failure model) at a time,
yet the gate simulator already carries 64+ stimulus vectors per machine
word.  This module folds many failure models into a *single* packed
gate-sim pass and resolves each model's suite verdict from it, in three
exactly-equivalent stages:

1. **Golden trace** — each suite runs once on the recording golden
   backend, capturing the ``(op, a, b) -> golden result`` stream every
   fault-free co-simulation would issue, plus the golden verdict.  The
   ISA model's cycle counts are backend-independent (``spec.cycles``
   per instruction), so any device whose gate results match golden at
   every op behaves — and counts cycles — identically to the golden
   run, by induction over frames.

2. **Packed pass** — one :func:`make_failing_netlist_multi` clone per
   model group replays the golden op stream through a single compiled
   packed simulation: model k's select port is driven with the constant
   plane mask ``1 << k``, scalar operand ports broadcast to the group
   mask, and RANDOM models get their serial backend's exact per-frame
   ``fm_c`` RNG stream on their own plane.  Planes whose result equals
   golden at every op take the golden verdict verbatim; the rest are
   *diverged* and carry their recorded per-op gate results forward.

3. **Replay** — a diverged model re-runs the suite at pure-ISA speed
   with :class:`ReplayBackend` serving the recorded plane results
   index-wise, verifying that every ``execute`` call still matches the
   golden stream (gate state is a function of stimulus history only, so
   a verified prefix makes the served results exact).  The first
   mismatch falls back to the exact serial gate co-simulation, so the
   overall path is unconditionally byte-identical to the serial engine.

SiliFuzz snapshots deliberately feed every result back through a
checksum chain, so a diverged plane *always* mismatches the golden op
stream — a plain replay would degenerate into a full serial co-sim per
plane.  Those planes are resolved by a *lockstep tail co-simulation*
instead: the packed pass checkpoints its DFF state at snapshot
boundaries; a diverged plane's run is bit-identical to golden up to the
snapshot containing its first divergent op, so the resolver takes the
golden verdict and cycle counts for that prefix verbatim and then runs
every diverged plane's remaining snapshots *concurrently* against the
same packed simulator.  Each plane's CPU executes in its own thread,
parked at each backend call; the coordinator packs one pending
``(op, a, b)`` per plane into a single packed op-slot, steps the
simulator once, and hands each plane its own result plane back.  A
plane's gate state depends only on its own stimulus history (the other
planes' muxes sit at identity), so the lockstep interleaving is exactly
the serial backend per plane — threads provide suspension, not
parallelism, and no result crosses planes.
"""

from __future__ import annotations

import random
import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import telemetry
from ..cpu.alu_design import ALU_LATENCY
from ..cpu.cpu import Cpu, CpuStall, GoldenAlu, GoldenMdu
from ..cpu.mdu_design import MDU_LATENCY
from ..lifting.instrument import make_failing_netlist_multi
from ..lifting.models import CMode, FailureModel
from ..sim.gatesim import GateSimulator

#: Units the packed prefilter can batch: fixed-latency issue/drain
#: pipelines whose per-op frame count is plane-independent.  The FPU's
#: variable ``out_valid`` handshake gives each plane its own frame
#: count, which lockstep packed stepping cannot represent.
PACKED_UNITS = ("alu", "mdu")

#: Per-unit co-simulation frame shape, mirroring the serial backends in
#: :mod:`repro.cpu.cosim`: scalar input ports driven per frame, and the
#: drain latency after issue.
_UNIT_FRAMES = {
    "alu": (("op", "a", "b", "mode", "dft"), ALU_LATENCY),
    "mdu": (("op", "a", "b", "dft"), MDU_LATENCY),
}

_GOLDEN = {"alu": GoldenAlu, "mdu": GoldenMdu}


class ReplayMismatch(Exception):
    """A replayed run diverged from the recorded golden op stream.

    Raised by :class:`ReplayBackend` when an ``execute`` call does not
    match the recorded stream index-wise (or outruns it) — the point
    past which the recorded per-plane gate results are no longer known
    to be exact.  The caller falls back to the serial co-simulation.
    """


class ReplayBackend:
    """Serves recorded per-plane gate results at pure-ISA speed.

    Exactness argument: the serial gate backend's state after i
    operations is a pure function of the stimulus prefix (the first i
    ``(op, a, b)`` calls plus the deterministic per-frame ``fm_c``
    stream, which depends only on the frame count).  As long as every
    call matches the recorded golden stream index-wise, the recorded
    packed-plane result *is* the serial backend's result; the first
    mismatch aborts before any unverified value is served.
    """

    __slots__ = ("_ops", "_results", "_index", "operations")

    def __init__(
        self, ops: Sequence[Tuple[int, int, int]], results: Sequence[int]
    ):
        self._ops = ops
        self._results = results
        self._index = 0
        self.operations = 0

    def execute(self, op: int, a: int, b: int) -> int:
        index = self._index
        ops = self._ops
        if index >= len(ops):
            raise ReplayMismatch("op stream outran the recorded trace")
        rec_op, rec_a, rec_b = ops[index]
        if rec_op != op or rec_a != a or rec_b != b:
            raise ReplayMismatch(f"op {index} diverged from the trace")
        self._index = index + 1
        self.operations += 1
        return self._results[index]


class _RecordingBackend:
    """Golden backend that captures the full co-simulation op stream."""

    def __init__(self, golden):
        self._golden = golden
        self.ops: List[Tuple[int, int, int]] = []
        self.results: List[int] = []
        self.operations = 0

    def execute(self, op: int, a: int, b: int) -> int:
        self.operations += 1
        result = self._golden.execute(op, a, b)
        self.ops.append((op, a, b))
        self.results.append(result)
        return result


@dataclass
class GoldenTrace:
    """One suite's fault-free op stream and verdict.

    For the silifuzz suite the trace also records, per snapshot, the
    cumulative op count (``snap_marks``) and the golden cycle count
    (``snap_cycles``) — the ingredients of prefix-skipping tail
    resolution.  Both stay ``None`` for vega/random traces.
    """

    suite: str
    ops: List[Tuple[int, int, int]]
    results: List[int]
    outcome: "SuiteOutcome"  # noqa: F821 - imported lazily (cycle)
    snap_marks: Optional[List[int]] = None
    snap_cycles: Optional[List[int]] = None


@dataclass
class _PassResult:
    """Everything one packed pass learned about its plane group."""

    #: Per-op list of result-port bit planes.
    result_planes: List[List[int]]
    #: Bit k set — plane k differed from golden at some op.
    diverged: int
    #: Plane -> index of its first divergent op.
    first_div: Dict[int, int] = field(default_factory=dict)
    #: Packed-netlist DFF names (state vector order); silifuzz only.
    dff_names: Optional[List[str]] = None
    #: Entry j — packed DFF state before snapshot j; silifuzz only.
    boundary_states: Optional[List[Optional[List[int]]]] = None
    #: The pass's simulator and stimulus shape, reused by the lockstep
    #: tail resolver (silifuzz only).
    sim: Optional[GateSimulator] = None
    select_planes: Optional[Dict[str, List[int]]] = None
    port_widths: Optional[Dict[str, int]] = None
    random_port: Optional[str] = None
    group_mask: int = 0


class _LockstepChannel:
    """Rendezvous between one plane's CPU thread and the coordinator."""

    __slots__ = ("request", "result", "done", "outcome", "error", "rng",
                 "_req", "_res")

    def __init__(self):
        self.request: Optional[Tuple[int, int, int]] = None
        self.result = 0
        self.done = False
        self.outcome = None
        self.error: Optional[BaseException] = None
        self.rng: Optional[random.Random] = None
        self._req = threading.Event()
        self._res = threading.Event()

    # -- CPU-thread side ------------------------------------------------
    def call(self, op: int, a: int, b: int) -> int:
        self.request = (op, a, b)
        self._res.clear()
        self._req.set()
        self._res.wait()
        return self.result

    def finish(self, outcome) -> None:
        self.outcome = outcome
        self.done = True
        self._req.set()

    # -- coordinator side -----------------------------------------------
    def wait_request(self) -> None:
        self._req.wait()
        self._req.clear()

    def respond(self, value: int) -> None:
        self.result = value
        self._res.set()


class _LockstepBackend:
    """Backend facade that parks its CPU at every gate operation."""

    __slots__ = ("_channel", "operations")

    def __init__(self, channel: _LockstepChannel):
        self._channel = channel
        self.operations = 0

    def execute(self, op: int, a: int, b: int) -> int:
        self.operations += 1
        return self._channel.call(op, a, b)


def _planes(value: int, width: int, mask: int) -> List[int]:
    """Broadcast one scalar port value to every plane in the group."""
    return [mask if (value >> bit) & 1 else 0 for bit in range(width)]


class PackedPrefilter:
    """Resolves suite outcomes for groups of failure models at once.

    Built over a :class:`~repro.campaign.engine.DeviceRunner`; writes
    resolved :class:`SuiteOutcome` objects straight into the runner's
    per-``(outcome key, suite)`` memo so :meth:`DeviceRunner.run_device`
    finds them instead of co-simulating.
    """

    def __init__(self, runner):
        self.runner = runner
        self._traces: Dict[str, GoldenTrace] = {}
        self._packed_memo: Dict[tuple, object] = {}

    # -- golden traces --------------------------------------------------
    def trace(self, suite: str) -> GoldenTrace:
        cached = self._traces.get(suite)
        if cached is not None:
            return cached
        from .engine import SuiteOutcome

        runner = self.runner
        recorder = _RecordingBackend(_GOLDEN[runner.unit]())
        backends = {runner.unit: recorder}
        if suite in ("vega", "random"):
            library = (
                runner.library if suite == "vega" else runner.random_library
            )
            result = library.run_suite(
                strategy=runner.config.strategy,
                max_instructions=runner.config.max_suite_instructions,
                **backends,
            )
            outcome = SuiteOutcome(
                suite=suite,
                detected=result.detected,
                stalled=result.stalled,
                cycles=result.cycles,
                detected_by=result.detected_by,
            )
        elif suite == "silifuzz":
            # Replicate SiliFuzzLite.detects so per-snapshot op marks
            # and golden cycle counts land in the trace (the golden
            # backend never stalls or mismatches, but the pathological
            # branches stay faithful — they clear the marks so diverged
            # planes take the generic fallback instead).
            marks: List[int] = []
            snap_cycles: List[int] = []
            executed = 0
            detected, stalled, by = False, False, None
            for snapshot, program in zip(
                runner.snapshots, runner.snapshot_programs
            ):
                cpu = Cpu(program, **backends)
                try:
                    result = cpu.run()
                except CpuStall:
                    detected, stalled, by = True, True, snapshot.name
                    executed += cpu.cycles
                    break
                executed += result.cycles
                marks.append(len(recorder.ops))
                snap_cycles.append(result.cycles)
                if result.exit_value != snapshot.golden:
                    detected, by = True, snapshot.name
                    break
            outcome = SuiteOutcome(
                suite=suite,
                detected=detected,
                stalled=stalled,
                cycles=executed,
                detected_by=by,
            )
            trace = GoldenTrace(
                suite=suite,
                ops=recorder.ops,
                results=recorder.results,
                outcome=outcome,
                snap_marks=None if detected else marks,
                snap_cycles=None if detected else snap_cycles,
            )
            self._traces[suite] = trace
            return trace
        else:
            raise ValueError(f"unknown campaign suite {suite!r}")
        trace = GoldenTrace(
            suite=suite,
            ops=recorder.ops,
            results=recorder.results,
            outcome=outcome,
        )
        self._traces[suite] = trace
        return trace

    # -- packed execution -----------------------------------------------
    def _packed_netlist(self, models: Sequence[FailureModel]):
        key = tuple(model.label for model in models)
        packed = self._packed_memo.get(key)
        if packed is None:
            packed = make_failing_netlist_multi(self.runner.netlist, models)
            self._packed_memo[key] = packed
        return packed

    def _packed_pass(
        self, trace: GoldenTrace, group: Sequence
    ) -> _PassResult:
        """Replay ``trace`` with every group model on its own plane.

        Returns the per-op result planes and the diverged-plane mask:
        bit k set means plane k's result differed from golden at some
        op and needs replay/tail/fallback resolution.  When the trace
        carries snapshot marks (silifuzz), the pass runs segment-wise
        and checkpoints the packed DFF state at every boundary.
        """
        runner = self.runner
        ports, latency = _UNIT_FRAMES[runner.unit]
        # One plane per outcome key; models may repeat across planes
        # (same label, different RANDOM seed), the netlist dedups.
        labels: List[str] = []
        models: List[FailureModel] = []
        for _key, spec in group:
            if spec.model.label not in labels:
                labels.append(spec.model.label)
                models.append(spec.model)
        packed = self._packed_netlist(models)
        netlist = packed.netlist
        mask = (1 << len(group)) - 1
        select_planes: Dict[str, List[int]] = {
            packed.select_ports[label]: [0] for label in labels
        }
        for plane, (_key, spec) in enumerate(group):
            select_planes[packed.select_ports[spec.model.label]][0] |= (
                1 << plane
            )
        # Per-plane fm_c streams: exactly the serial backend's RNG.
        rngs = [
            random.Random(spec.backend_seed)
            if spec.model.c_mode is CMode.RANDOM
            else None
            for _key, spec in group
        ]
        has_c = packed.random_port is not None
        widths = {name: netlist.ports[name].width for name in ports}
        sim = GateSimulator(netlist)

        def frames(ops):
            for op, a, b in ops:
                base = {
                    "op": _planes(op, widths["op"], mask),
                    "a": _planes(a, widths["a"], mask),
                    "b": _planes(b, widths["b"], mask),
                    "dft": [0] * widths["dft"],
                }
                if "mode" in widths:
                    base["mode"] = [0] * widths["mode"]
                base.update(select_planes)
                if not has_c:
                    # Operands hold through the drain frames, exactly
                    # like the serial backend.
                    for _ in range(latency + 1):
                        yield base
                    continue
                for _ in range(latency + 1):
                    c_plane = 0
                    for plane, rng in enumerate(rngs):
                        if rng is not None:
                            c_plane |= rng.getrandbits(1) << plane
                    yield {**base, packed.random_port: [c_plane]}

        watch = ("result",)
        dff_names: Optional[List[str]] = None
        boundary_states: Optional[List[Optional[List[int]]]] = None
        if trace.snap_marks is not None:
            # Segment-wise: the simulator state persists across
            # run_planes calls, so checkpointing between segments is
            # free of behavioural difference.
            captured: List[Tuple[List[int], ...]] = []
            boundary_states = [None]
            prev = 0
            for mark in trace.snap_marks:
                captured.extend(
                    sim.run_planes(frames(trace.ops[prev:mark]), mask, watch)
                )
                boundary_states.append(list(sim.state))
                prev = mark
            dff_names = [d.name for d in sim._dffs]
        else:
            captured = sim.run_planes(frames(trace.ops), mask, watch)
        step = latency + 1
        result_planes: List[List[int]] = []
        diverged = 0
        first_div: Dict[int, int] = {}
        for index, golden in enumerate(trace.results):
            planes = captured[index * step + step - 1][0]
            result_planes.append(planes)
            diff = 0
            for bit, plane in enumerate(planes):
                expected = mask if (golden >> bit) & 1 else 0
                diff |= plane ^ expected
            new = diff & mask & ~diverged
            while new:
                low = new & -new
                first_div[low.bit_length() - 1] = index
                new ^= low
            diverged |= diff & mask
        return _PassResult(
            result_planes=result_planes,
            diverged=diverged,
            first_div=first_div,
            dff_names=dff_names,
            boundary_states=boundary_states,
            sim=sim,
            select_planes=select_planes,
            port_widths=widths,
            random_port=packed.random_port,
            group_mask=mask,
        )

    # -- divergence resolution ------------------------------------------
    def _plane_results(
        self, result_planes: Sequence[Sequence[int]], plane: int
    ) -> List[int]:
        """Re-assemble one plane's per-op integer results."""
        out = []
        for planes in result_planes:
            value = 0
            for bit, plane_bits in enumerate(planes):
                if (plane_bits >> plane) & 1:
                    value |= 1 << bit
            out.append(value)
        return out

    def _resolve_diverged(
        self, suite: str, trace: GoldenTrace, results: List[int], spec
    ):
        from .engine import SuiteOutcome

        runner = self.runner
        backends = {runner.unit: ReplayBackend(trace.ops, results)}
        try:
            if suite in ("vega", "random"):
                library = (
                    runner.library
                    if suite == "vega"
                    else runner.random_library
                )
                result = library.run_suite(
                    strategy=runner.config.strategy,
                    max_instructions=runner.config.max_suite_instructions,
                    **backends,
                )
                if result.stalled:
                    telemetry.add("campaign.stalls")
                outcome = SuiteOutcome(
                    suite=suite,
                    detected=result.detected,
                    stalled=result.stalled,
                    cycles=result.cycles,
                    detected_by=result.detected_by,
                )
            else:
                verdict = runner._fuzz.detects(
                    runner.snapshots,
                    programs=runner.snapshot_programs,
                    **backends,
                )
                if verdict["stalled"]:
                    telemetry.add("campaign.stalls")
                outcome = SuiteOutcome(
                    suite=suite,
                    detected=bool(verdict["detected"]),
                    stalled=bool(verdict["stalled"]),
                    cycles=int(verdict["cycles"]),
                    detected_by=verdict["by"],
                )
        except ReplayMismatch:
            # The faulty run's op stream left the golden prefix: only
            # the exact gate co-simulation knows what happens next.
            telemetry.add("campaign.packed_fallbacks")
            return runner._run_suite(suite, spec)
        telemetry.add("campaign.packed_replays")
        return outcome

    def _lockstep_worker(
        self, channel: _LockstepChannel, start: int, prefix_cycles: int
    ) -> None:
        """One diverged plane's tail: replicates the ``detects`` loop.

        Snapshots before ``start`` ran bit-identical to golden (same
        stimulus, same results, hence same architectural state and
        checksums), so the golden per-snapshot cycle counts stand in
        for the prefix and the loop resumes at the first snapshot that
        can diverge.
        """
        from .engine import SuiteOutcome

        runner = self.runner
        backends = {runner.unit: _LockstepBackend(channel)}
        executed = prefix_cycles
        outcome = None
        try:
            for snapshot, program in zip(
                runner.snapshots[start:], runner.snapshot_programs[start:]
            ):
                cpu = Cpu(program, **backends)
                try:
                    result = cpu.run()
                except CpuStall:
                    outcome = SuiteOutcome(
                        suite="silifuzz",
                        detected=True,
                        stalled=True,
                        cycles=executed + cpu.cycles,
                        detected_by=snapshot.name,
                    )
                    break
                executed += result.cycles
                if result.exit_value != snapshot.golden:
                    outcome = SuiteOutcome(
                        suite="silifuzz",
                        detected=True,
                        stalled=False,
                        cycles=executed,
                        detected_by=snapshot.name,
                    )
                    break
            else:
                outcome = SuiteOutcome(
                    suite="silifuzz",
                    detected=False,
                    stalled=False,
                    cycles=executed,
                    detected_by=None,
                )
        except BaseException as exc:  # pragma: no cover - surfaced below
            channel.error = exc
        finally:
            channel.finish(outcome)

    def _resolve_silifuzz_tails(
        self, trace: GoldenTrace, passed: _PassResult, group: Sequence,
        planes: Sequence[int],
    ) -> Dict[int, object]:
        """Resolve every diverged silifuzz plane in one lockstep batch.

        The packed pass's simulator is re-seeded so each plane's DFF
        state is its own snapshot-boundary checkpoint (a plane's state
        bits are a pure function of its own stimulus prefix; the other
        planes' muxes sit at identity).  Each plane's tail CPU runs in
        its own thread, parked at every backend call; per op-slot the
        coordinator packs the pending ``(op, a, b)`` of every live
        plane, steps issue + drain frames once, and hands each plane
        its own result plane — so N tails cost one packed co-sim, not N
        serial ones.  Per-plane ``fm_c`` RNGs are fast-forwarded by one
        draw per prefix frame, exactly the serial consumption.
        """
        runner = self.runner
        _ports, latency = _UNIT_FRAMES[runner.unit]
        marks = trace.snap_marks
        sim = passed.sim
        widths = passed.port_widths
        starts = {
            plane: bisect_right(marks, passed.first_div[plane])
            for plane in planes
        }
        # Per-plane initial state, combined into the shared simulator:
        # checkpointed bits for planes with a golden prefix, the reset
        # init for planes diverging inside snapshot 0.  Bits of planes
        # outside the batch are never read back.
        combined = [0] * len(sim._dffs)
        for index, dff in enumerate(sim._dffs):
            bits = 0
            for plane in planes:
                start = starts[plane]
                if start > 0:
                    source = passed.boundary_states[start][index]
                else:
                    source = -1 if dff.init else 0
                bits |= ((source >> plane) & 1) << plane
            combined[index] = bits
        sim.state = combined

        channels: Dict[int, _LockstepChannel] = {}
        threads = []
        for plane in planes:
            _key, spec = group[plane]
            channel = _LockstepChannel()
            start = starts[plane]
            if spec.model.c_mode is CMode.RANDOM:
                rng = random.Random(spec.backend_seed)
                if start > 0:
                    for _ in range(marks[start - 1] * (latency + 1)):
                        rng.getrandbits(1)
                channel.rng = rng
            channels[plane] = channel
            threads.append(
                threading.Thread(
                    target=self._lockstep_worker,
                    args=(
                        channel,
                        start,
                        sum(trace.snap_cycles[:start]),
                    ),
                    daemon=True,
                )
            )
        for thread in threads:
            thread.start()

        mask = passed.group_mask
        zero_planes = {
            name: [0] * width
            for name, width in widths.items()
            if name not in ("op", "a", "b")
        }
        live = dict(channels)
        while True:
            requests: Dict[int, Tuple[int, int, int]] = {}
            for plane, channel in list(live.items()):
                channel.wait_request()
                if channel.done:
                    del live[plane]
                else:
                    requests[plane] = channel.request
            if not live:
                break
            base: Dict[str, List[int]] = {}
            for position, name in enumerate(("op", "a", "b")):
                port_planes = [0] * widths[name]
                for plane, request in requests.items():
                    value = request[position] & ((1 << widths[name]) - 1)
                    while value:
                        low = value & -value
                        port_planes[low.bit_length() - 1] |= 1 << plane
                        value ^= low
                base[name] = port_planes
            base.update(zero_planes)
            base.update(passed.select_planes)
            for _frame in range(latency + 1):
                inputs = base
                if passed.random_port is not None:
                    c_plane = 0
                    for plane, channel in live.items():
                        if channel.rng is not None:
                            c_plane |= channel.rng.getrandbits(1) << plane
                    inputs = {**base, passed.random_port: [c_plane]}
                sim.step(inputs, mask, packed=True)
            telemetry.add("campaign.packed_tail_slots")
            result_planes = sim.read_output_planes("result")
            for plane, channel in live.items():
                value = 0
                for bit, plane_bits in enumerate(result_planes):
                    if (plane_bits >> plane) & 1:
                        value |= 1 << bit
                channel.respond(value)
        for thread in threads:
            thread.join()
        outcomes: Dict[int, object] = {}
        for plane, channel in channels.items():
            if channel.error is not None:
                raise channel.error
            telemetry.add("campaign.packed_tails")
            if channel.outcome.stalled:
                telemetry.add("campaign.stalls")
            outcomes[plane] = channel.outcome
        return outcomes

    # -- group driver ---------------------------------------------------
    def resolve_group(self, group: Sequence) -> None:
        """Resolve every suite outcome for one packed model group.

        ``group`` is a list of ``(outcome_key, representative spec)``
        pairs, at most one per distinct outcome key; resolved outcomes
        land in the runner's per-suite memo.
        """
        runner = self.runner
        telemetry.add("campaign.packed_groups")
        telemetry.add("campaign.packed_planes", len(group))
        for suite in runner.config.suites:
            trace = self.trace(suite)
            passed = self._packed_pass(trace, group)
            tails: List[int] = []
            for plane, (key, spec) in enumerate(group):
                memo_key = (key, suite)
                if memo_key in runner._suite_outcomes:
                    continue
                if not (passed.diverged >> plane) & 1:
                    telemetry.add("campaign.packed_golden")
                    runner._suite_outcomes[memo_key] = trace.outcome
                    continue
                if suite == "silifuzz" and trace.snap_marks is not None:
                    # Checksum chains defeat replay by construction;
                    # batch these into one lockstep tail co-sim below.
                    tails.append(plane)
                    continue
                runner._suite_outcomes[memo_key] = self._resolve_diverged(
                    suite,
                    trace,
                    self._plane_results(passed.result_planes, plane),
                    spec,
                )
            if tails:
                outcomes = self._resolve_silifuzz_tails(
                    trace, passed, group, tails
                )
                for plane in tails:
                    key, _spec = group[plane]
                    runner._suite_outcomes[(key, suite)] = outcomes[plane]
