"""The VR32 CPU: ISA, assembler, simulator, gate designs, co-simulation."""

from .alu_design import AluOp, VALID_ALU_OPS, alu_reference, build_alu
from .asm import AsmError, DATA_BASE, Program, assemble
from .cosim import GateAluBackend, GateFpuBackend, GateMduBackend
from .disasm import disassemble, render_instruction
from .encoding import decode, encode, encode_program
from .mdu_design import MduOp, VALID_MDU_OPS, build_mdu, mdu_reference
from .cpu import (
    Cpu,
    CpuError,
    CpuStall,
    GoldenAlu,
    GoldenFpu,
    GoldenMdu,
    RunResult,
    run_program,
)
from .fpu_design import FpuOp, VALID_FPU_OPS, build_fpu, fpu_reference
from .isa import Instruction, SPECS
from .mappers import AluMapper, FpuMapper, MduMapper

__all__ = [
    "AluOp",
    "VALID_ALU_OPS",
    "alu_reference",
    "build_alu",
    "AsmError",
    "DATA_BASE",
    "Program",
    "assemble",
    "GateAluBackend",
    "GateFpuBackend",
    "GateMduBackend",
    "disassemble",
    "render_instruction",
    "decode",
    "encode",
    "encode_program",
    "MduOp",
    "VALID_MDU_OPS",
    "build_mdu",
    "mdu_reference",
    "GoldenMdu",
    "MduMapper",
    "Cpu",
    "CpuError",
    "CpuStall",
    "GoldenAlu",
    "GoldenFpu",
    "RunResult",
    "run_program",
    "FpuOp",
    "VALID_FPU_OPS",
    "build_fpu",
    "fpu_reference",
    "Instruction",
    "SPECS",
    "AluMapper",
    "FpuMapper",
]
