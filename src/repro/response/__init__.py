"""Detection→response reconfiguration scenarios (ROADMAP item 4b).

Detection is only half the fleet story: once Vega flags a device whose
timing is eroding, the operator must *do* something.  Following the
automated design-approximation line of work (arXiv 2203.07962) and the
aging-monitor survey's reconfiguration taxonomy (arXiv 2007.07829),
this package models three response policies against the unit's aged
timing and reports recovered lifetime vs accuracy/frequency cost:

* **derate** — stretch the clock period until mission-age violations
  clear (frequency cost, no logic change);
* **resynth** — re-synthesize: optimize the netlist, *prove* exactness
  with the lifting engine's sequential equivalence checker, and model
  the violating cone's cells as fresh silicon (area cost);
* **approximate** — bypass the violating cone's capture logic (netlist
  clone surgery) and measure the output-accuracy cost with packed
  co-simulation.

:class:`~repro.response.engine.ResponseEngine` evaluates the policies
(resumable, per-policy checkpoints, byte-identical for any worker
count); :class:`~repro.response.report.ResponseReport` is the
canonical-JSON artifact behind ``repro respond``.
"""

from .engine import ResponseEngine
from .report import ResponseReport

__all__ = ["ResponseEngine", "ResponseReport"]
