"""Tests for the vectorized scheduler scoring path.

The numpy mirror (:class:`repro.scheduler.belief._BeliefArrays`) and
the vectorized :meth:`Policy.plan` are optimizations with an equality
contract: every schedule, retire decision, fleet predicate, snapshot,
and digest must be identical to the scalar reference.  These tests
drive both paths over evolving belief states and compare byte for
byte.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.fleet import DeviceSpec
from repro.scheduler.belief import ArmSpec, FleetBelief
from repro.scheduler.policy import PlanRequest, make_policy

CORNERS = ["typ", "fast", "slow"]
CLASSES = [f"cls{i}" for i in range(4)]


def make_fleet(n):
    return [
        DeviceSpec(
            index=i,
            device_id=f"dev{i:04d}",
            corner=CORNERS[i % len(CORNERS)],
            onset_years=5.0,
            faulty=False,
            model=None,
            backend_seed=i,
        )
        for i in range(n)
    ]


def make_arms(n_cases):
    arms = [
        ArmSpec(
            f"case:c{i}", "case", CLASSES[i % len(CLASSES)],
            400 + 13 * i, i,
        )
        for i in range(n_cases)
    ]
    arms.append(ArmSpec("suite:random", "random", "*", 5000, n_cases))
    arms.append(
        ArmSpec("suite:silifuzz", "silifuzz", "*", 6000, n_cases + 1)
    )
    return arms


def make_belief(fleet, history_step=3, detect_step=17, budget=25_000):
    """A belief with folded-in history so posteriors/budgets vary."""
    arms = make_arms(10)
    belief = FleetBelief(fleet, CLASSES, cycle_budget=budget)
    for i in range(0, len(fleet), history_step):
        arm = arms[(7 * i) % len(arms)]
        belief.record_dispatch(fleet[i].device_id, arm)
        belief.record_outcome(
            fleet[i].device_id,
            arm,
            detected=(i % detect_step == 0),
            cycles=arm.cost_cycles,
        )
    return belief, arms


def assert_schedules_equal(vec, ref):
    assert vec.tick == ref.tick
    assert vec.policy == ref.policy
    assert vec.dispatches == ref.dispatches
    assert vec.retired == ref.retired


@pytest.mark.parametrize("policy_name", ["sequential", "greedy", "thompson"])
class TestPlanEquivalence:
    def test_matches_reference(self, policy_name):
        fleet = make_fleet(60)
        belief, arms = make_belief(fleet)
        policy = make_policy(policy_name, seed=7)
        requests = [PlanRequest(s.device_id, s.index) for s in fleet]
        for tick in (1, 2, 5, 40):
            assert_schedules_equal(
                policy.plan(belief, arms, requests, tick),
                policy.plan_reference(belief, arms, requests, tick),
            )

    def test_matches_after_evolution(self, policy_name):
        """Incremental mirror sync: plan between mutations, re-plan."""
        fleet = make_fleet(24)
        belief, arms = make_belief(fleet)
        policy = make_policy(policy_name, seed=3)
        requests = [PlanRequest(s.device_id, s.index) for s in fleet]
        for tick in range(1, 6):
            schedule = policy.plan(belief, arms, requests, tick)
            assert_schedules_equal(
                schedule,
                policy.plan_reference(belief, arms, requests, tick),
            )
            # Fold the tick's outcomes back in (mutates the mirror
            # incrementally), alternating detection verdicts.
            for n, dispatch in enumerate(schedule.dispatches):
                arm = next(a for a in arms if a.name == dispatch.arm)
                belief.record_dispatch(dispatch.device_id, arm)
                belief.record_outcome(
                    dispatch.device_id,
                    arm,
                    detected=(n % 5 == 0),
                    cycles=arm.cost_cycles,
                )

    def test_near_exhausted_budgets(self, policy_name):
        """Retire paths: budgets too small for most (then all) arms."""
        fleet = make_fleet(12)
        policy = make_policy(policy_name, seed=1)
        requests = [PlanRequest(s.device_id, s.index) for s in fleet]
        for budget in (0, 400, 450, 6000):
            belief, arms = make_belief(fleet, budget=budget)
            assert_schedules_equal(
                policy.plan(belief, arms, requests, 1),
                policy.plan_reference(belief, arms, requests, 1),
            )

    @given(
        n_devices=st.integers(min_value=1, max_value=30),
        history_step=st.integers(min_value=1, max_value=6),
        detect_step=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=2**16),
        tick=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_beliefs(
        self, policy_name, n_devices, history_step, detect_step, seed, tick
    ):
        fleet = make_fleet(n_devices)
        belief, arms = make_belief(
            fleet, history_step=history_step, detect_step=detect_step
        )
        policy = make_policy(policy_name, seed=seed)
        requests = [PlanRequest(s.device_id, s.index) for s in fleet]
        assert_schedules_equal(
            policy.plan(belief, arms, requests, tick),
            policy.plan_reference(belief, arms, requests, tick),
        )


class TestFleetPredicates:
    def test_done_mask_matches_device_done(self):
        fleet = make_fleet(40)
        belief, arms = make_belief(fleet, detect_step=5, budget=1200)
        mirror = belief.arrays(arms)
        mask = belief.done_mask(arms)
        for spec in fleet:
            assert mask[mirror.row[spec.device_id]] == belief.device_done(
                spec.device_id, arms
            )
        scalar_done = sum(
            belief.device_done(s.device_id, arms) for s in fleet
        )
        assert belief.active_count(arms) == len(fleet) - scalar_done
        assert belief.all_done(arms) == (scalar_done == len(fleet))

    def test_catalogue_change_rebuilds_mirror(self):
        fleet = make_fleet(8)
        belief, arms = make_belief(fleet)
        belief.arrays(arms)
        other = make_arms(4)
        mirror = belief.arrays(other)
        assert [a.name for a in mirror.arms] == [a.name for a in other]

    def test_foreign_event_invalidates_mirror(self):
        """Events outside the mirror's catalogue drop it, not corrupt it."""
        fleet = make_fleet(8)
        belief, arms = make_belief(fleet)
        belief.arrays(arms)
        foreign = ArmSpec("case:elsewhere", "case", CLASSES[0], 123, 99)
        belief.record_dispatch(fleet[0].device_id, foreign)
        assert belief._arrays is None
        policy = make_policy("greedy", 7)
        requests = [PlanRequest(s.device_id, s.index) for s in fleet]
        assert_schedules_equal(
            policy.plan(belief, arms, requests, 1),
            policy.plan_reference(belief, arms, requests, 1),
        )


class TestSerializationUntouched:
    def test_snapshot_identical_after_array_use(self):
        fleet = make_fleet(16)
        belief, arms = make_belief(fleet)
        before = belief.to_json()
        digest_before = belief.digest()
        policy = make_policy("thompson", 7)
        requests = [PlanRequest(s.device_id, s.index) for s in fleet]
        policy.plan(belief, arms, requests, 1)
        belief.done_mask(arms)
        assert belief.to_json() == before
        assert belief.digest() == digest_before

    def test_roundtrip_then_vectorized_plan(self):
        fleet = make_fleet(16)
        belief, arms = make_belief(fleet)
        restored = FleetBelief.from_json(belief.to_json())
        assert restored.digest() == belief.digest()
        policy = make_policy("greedy", 7)
        requests = [PlanRequest(s.device_id, s.index) for s in fleet]
        assert_schedules_equal(
            policy.plan(restored, arms, requests, 3),
            policy.plan_reference(belief, arms, requests, 3),
        )
