"""Incremental-vs-fresh BMC equivalence and parallel lifting determinism.

The incremental BMC engine (one persistent solver, per-depth cover
objectives asserted through assumption literals) must be observationally
identical to the seed's rebuild-per-depth engine: same verdict and same
witness length for every cover query.  These tests drive both engines
over randomly drawn failure models on the ALU and FPU shadow netlists,
and check that sharding endpoint pairs across worker processes changes
nothing about the lifting report.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ErrorLiftingConfig
from repro.cpu.alu_design import build_alu
from repro.cpu.fpu_design import build_fpu
from repro.formal.bmc import BmcStatus, BoundedModelChecker, CoverObjective
from repro.lifting.instrument import instrument_for_cover
from repro.lifting.lifter import ErrorLifter
from repro.lifting.models import CMode, FailureModel, ViolationKind
from repro.lifting.parallel import fork_available, lift_pairs
from repro.sta.timing import TimingViolation


def _dff_pairs(netlist, limit=8):
    """Structurally valid (start, end) DFF pairs: start in end's D cone."""
    pairs = []
    for end in netlist.dffs():
        seen = set()
        stack = [end.pins["D"]]
        while stack:
            net = stack.pop()
            if net.name in seen:
                continue
            seen.add(net.name)
            if net.driver is None:
                continue
            inst = net.driver[0]
            if inst.ctype.name == "DFF":
                pairs.append((inst.name, end.name))
            else:
                stack.extend(inst.pins[pin] for pin in inst.ctype.inputs)
    pairs.sort()
    # Spread the sample across the netlist instead of taking one corner.
    stride = max(1, len(pairs) // limit)
    return pairs[::stride][:limit]


@functools.lru_cache(maxsize=None)
def _unit_instrumentations(unit):
    """(shadow netlist, output pairs) per drawable failure model."""
    netlist = build_alu() if unit == "alu" else build_fpu()
    out = []
    for start, end in _dff_pairs(netlist):
        for kind in (ViolationKind.SETUP, ViolationKind.HOLD):
            for c_mode in (CMode.ZERO, CMode.ONE):
                model = FailureModel(start, end, kind, c_mode)
                try:
                    instr = instrument_for_cover(netlist, model)
                except Exception:
                    continue  # endpoint cannot influence outputs
                out.append((model.label, instr))
    return out


class TestIncrementalFreshEquivalence:
    @pytest.mark.parametrize("unit", ["alu", "fpu"])
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_same_verdict_and_trace_length(self, unit, data):
        candidates = _unit_instrumentations(unit)
        assert candidates, f"no instrumentable pairs on the {unit}"
        label, instr = data.draw(st.sampled_from(candidates))
        depth = data.draw(st.integers(min_value=2, max_value=5))
        objective = CoverObjective(differ=instr.output_pairs)
        observe = [net for pair in instr.output_pairs for net in pair]

        fresh = BoundedModelChecker(instr.netlist, incremental=False).cover(
            objective, max_depth=depth, observe=observe
        )
        incremental = BoundedModelChecker(instr.netlist, incremental=True).cover(
            objective, max_depth=depth, observe=observe
        )

        assert incremental.status is fresh.status, label
        assert incremental.depth_checked == fresh.depth_checked, label
        if fresh.status is BmcStatus.COVERED:
            assert incremental.trace.depth == fresh.trace.depth, label
            assert (
                incremental.trace.property_cycle == fresh.trace.property_cycle
            ), label


ADDER_VIOLATIONS = [
    TimingViolation(
        kind="setup", start="d4", end="d10", cells=("x7", "x8"),
        arrival=0.95, required=0.94,
    ),
    TimingViolation(
        kind="hold", start="d1", end="d9", cells=("x5",),
        arrival=0.0, required=0.05,
    ),
    TimingViolation(
        kind="setup", start="d3", end="d10", cells=("x7", "x8"),
        arrival=0.95, required=0.94,
    ),
]


def _fingerprint(results):
    return [
        (
            r.start,
            r.end,
            r.outcome.value,
            [
                (v.model.label, v.status.value, v.conversion_failed)
                for v in r.variants
            ],
        )
        for r in results
    ]


class TestParallelLifting:
    def _lifter(self, paper_adder, **overrides):
        config = ErrorLiftingConfig(bmc_depth=4, **overrides)
        return ErrorLifter(paper_adder, config)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_parallel_matches_serial(self, paper_adder):
        lifter = self._lifter(paper_adder)
        serial = lift_pairs(lifter, ADDER_VIOLATIONS, workers=1)
        parallel = lift_pairs(lifter, ADDER_VIOLATIONS, workers=2)
        assert _fingerprint(parallel) == _fingerprint(serial)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_more_workers_than_pairs(self, paper_adder):
        lifter = self._lifter(paper_adder)
        results = lift_pairs(lifter, ADDER_VIOLATIONS, workers=16)
        assert _fingerprint(results) == _fingerprint(
            [lifter.lift_pair(v) for v in ADDER_VIOLATIONS]
        )

    def test_zero_workers_means_auto(self, paper_adder):
        lifter = self._lifter(paper_adder)
        results = lift_pairs(lifter, ADDER_VIOLATIONS, workers=0)
        assert _fingerprint(results) == _fingerprint(
            [lifter.lift_pair(v) for v in ADDER_VIOLATIONS]
        )

    def test_serial_fallback_without_fork(self, paper_adder, monkeypatch):
        import repro.lifting.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "fork_available", lambda: False)
        lifter = self._lifter(paper_adder)
        results = parallel_mod.lift_pairs(lifter, ADDER_VIOLATIONS, workers=8)
        assert _fingerprint(results) == _fingerprint(
            [lifter.lift_pair(v) for v in ADDER_VIOLATIONS]
        )

    def test_config_workers_drive_lift(self, paper_adder):
        from repro.sta.timing import StaReport

        report = StaReport(netlist_name="adder", period_ns=1.0)
        report.violations.extend(ADDER_VIOLATIONS)
        serial = self._lifter(paper_adder, workers=1).lift(report)
        parallel = self._lifter(paper_adder, workers=2).lift(report)
        assert _fingerprint(parallel.pairs) == _fingerprint(serial.pairs)

    def test_incremental_flag_does_not_change_reports(self, paper_adder):
        from repro.sta.timing import StaReport

        report = StaReport(netlist_name="adder", period_ns=1.0)
        report.violations.extend(ADDER_VIOLATIONS)
        incremental = self._lifter(paper_adder, incremental_bmc=True).lift(report)
        fresh = self._lifter(paper_adder, incremental_bmc=False).lift(report)
        assert _fingerprint(incremental.pairs) == _fingerprint(fresh.pairs)
