"""The ``ResponseReport`` artifact: recovered lifetime vs cost.

One row per response policy, each a pure function of (netlist, SP
profile, configs): no wall clock, no worker counts, no resume
provenance — the report is byte-identical however the evaluation was
parallelized or resumed, mirroring the campaign-report contract.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional


@dataclass
class ResponseReport:
    """Recovered lifetime vs accuracy/frequency cost per policy.

    Each ``policies`` row carries::

        policy             name ("derate" | "resynth" | "approximate")
        applicable         False when the policy had nothing to act on
        new_onset_years    first violation onset after the response
        censored           True when no violation inside the scan
                           horizon (onset is horizon * censor_factor)
        recovered_years    new onset minus the baseline onset
        frequency_cost_pct clock-period stretch (derate only)
        accuracy_cost_pct  output-mismatch % over sampled operands
                           (approximate only)
        area_delta_cells   cells re-synthesized (> 0) or removed (< 0)
        equivalent         equivalence-check verdict vs the original
                           netlist (None: budget exhausted)
        detail             human-readable description of the action
    """

    unit: str
    period_ns: float
    mission_years: float
    horizon_years: float
    censor_factor: float
    baseline_onset_years: Optional[float]
    victim_start: Optional[str]
    victim_end: Optional[str]
    victim_kind: Optional[str]
    policies: List[dict] = field(default_factory=list)

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no wall clock, no worker count."""
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ResponseReport":
        return cls(**json.loads(text))

    # -- human view ----------------------------------------------------
    def summary(self) -> str:
        if self.baseline_onset_years is None:
            return (
                f"response: {self.unit} signed off at "
                f"{self.period_ns:.4f} ns; no violation inside the "
                f"{self.horizon_years:.0f}y scan horizon — nothing to "
                "respond to"
            )
        lines = [
            f"response: {self.unit} signed off at {self.period_ns:.4f} ns; "
            f"first violation {self.victim_start} ~> {self.victim_end} "
            f"({self.victim_kind}) at {self.baseline_onset_years:.1f}y "
            f"(mission {self.mission_years:.0f}y)",
            "  policy      | new onset | recovered | freq cost "
            "| accuracy | cells",
        ]
        censored_note = False
        for row in self.policies:
            if not row.get("applicable", True):
                lines.append(
                    f"  {row['policy']:<11s} | (not applicable: "
                    f"{row['detail']})"
                )
                continue
            mark = "*" if row["censored"] else " "
            censored_note = censored_note or row["censored"]
            lines.append(
                f"  {row['policy']:<11s} | {row['new_onset_years']:8.2f}y{mark}"
                f"| {row['recovered_years']:+8.2f}y "
                f"| {row['frequency_cost_pct']:8.1f}% "
                f"| {row['accuracy_cost_pct']:7.2f}% "
                f"| {row['area_delta_cells']:+d}"
            )
        if censored_note:
            lines.append(
                f"  (* censored: no violation inside the "
                f"{self.horizon_years:.0f}y horizon; onset reported as "
                f"horizon x {self.censor_factor})"
            )
        return "\n".join(lines)
