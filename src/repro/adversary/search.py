"""Deterministic attacker-workload search.

The attacker's objective is the dual of the profiler's: instead of
measuring the SP skew a representative workload induces, *maximize* the
BTI stress duty over a chosen victim cone.  The search is a seeded
candidate pool refined by beam hill-climbing:

* **seeding** — ``candidates`` operand streams drawn from the
  ``adversary.candidate`` RNG stream, cycling through bias modes
  (zeros-heavy, ones-heavy, sparse-toggle hold, uniform) so the pool
  starts spread across the SP spectrum;
* **refinement** — each of ``rounds`` rounds mutates every beam
  survivor ``mutations`` times (``adversary.mutate`` streams keyed by
  round/rank/mutant), re-scores, and keeps the ``beam`` best.

Scoring reuses :func:`repro.sim.parallel_profile
.profile_workload_streams` — the packed, fork-sharded profiler — so a
candidate's stress is bit-identical for any worker count, and profiles
are memoized through :class:`~repro.core.artifacts.ArtifactCache`
keyed by (netlist hash, stream content, lanes, drain cycles): worker
count never enters a key.  Each round publishes a checkpoint keyed by
its round index (never the total round count), so a resumed search —
even one asked for *more* rounds — extends the completed prefix
instead of restarting, and its result is byte-identical to an
uninterrupted run.

The physics linking stress to onset: BTI dVth grows as
``duty^0.5 · t^(1/6)`` (:mod:`repro.aging.bti`), so reaching the same
dVth (the same violation) takes ``t ∝ duty^-3`` — the attack's onset
acceleration is the stress ratio raised to ``duty_exponent /
time_exponent``, capped because real wearout saturates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import json

from ..core import telemetry
from ..core.artifacts import ArtifactCache
from ..core.config import AdversaryConfig
from ..core.rng import stream_rng
from ..aging.bti import DEFAULT_BTI
from ..netlist.netlist import Netlist
from ..sim.parallel_profile import profile_workload_streams
from ..sim.probes import SPProfile

#: Candidate bias modes the generators cycle through.
BIAS_MODES = ("zero", "one", "hold", "uniform")

#: Checkpoint payload version; bump on incompatible layout changes.
_CHECKPOINT_VERSION = 1

#: Stream positions re-held per hold-mode run before redrawing.
_HOLD_RUN = 8


@dataclass(frozen=True)
class AttackTarget:
    """The victim: endpoint pairs plus their stress-scored cone nets.

    ``nets`` holds ``(net_name, stress_state)`` for every instance
    output in the union of the endpoints' fanin cones — the nets whose
    BTI stress duty the attacker maximizes.
    """

    pairs: Tuple[Tuple[str, str], ...]
    nets: Tuple[Tuple[str, int], ...]


def select_target(
    netlist: Netlist, pairs: Sequence[Tuple[str, str]]
) -> AttackTarget:
    """Resolve endpoint pairs to the stress cone behind their capture.

    Each pair's ``end`` flop has its D-pin fanin cone (stopping at
    flops) collected; the cone instances' output nets, tagged with the
    driving cell's stressed output state, are what
    :func:`stress_score` averages over.
    """
    norm = tuple(sorted({(str(s), str(e)) for s, e in pairs}))
    if not norm:
        raise ValueError("no target endpoint pairs")
    seen: Dict[str, int] = {}
    for _start, end in norm:
        try:
            flop = netlist.instances[end]
        except KeyError:
            raise KeyError(f"target endpoint {end!r} not in netlist") from None
        cone = netlist.fanin_cone(flop.pins["D"])
        for inst in cone:
            seen[inst.output_net.name] = inst.ctype.stress_state
    if not seen:
        raise ValueError("target pairs have empty fanin cones")
    return AttackTarget(pairs=norm, nets=tuple(sorted(seen.items())))


def stress_score(profile: SPProfile, target: AttackTarget) -> float:
    """Mean BTI stress duty over the victim cone under ``profile``.

    A cell whose PMOS stack is stressed at output 0 contributes
    ``1 - sp``; one stressed at output 1 contributes ``sp`` — the same
    duty the characterization pipeline feeds the reaction-diffusion
    model, so maximizing this metric maximizes aged delay on the
    victim paths.
    """
    total = 0.0
    for name, stress_state in target.nets:
        sp = profile.sp.get(name, 0.0)
        total += (1.0 - sp) if stress_state == 0 else sp
    return total / len(target.nets)


def _input_ports(netlist: Netlist) -> Tuple[Tuple[str, int], ...]:
    return tuple((p.name, p.width) for p in netlist.input_ports())


def _draw_value(rng, width: int, mode: str) -> int:
    """One biased operand draw.

    AND-ing (OR-ing) three uniform draws skews each bit to 1/8 (7/8)
    probability of one — deep into the stressed (de-stressed) SP tail
    without being the degenerate all-zeros vector that never exercises
    the cone.
    """
    if mode == "zero":
        return (
            rng.getrandbits(width)
            & rng.getrandbits(width)
            & rng.getrandbits(width)
        )
    if mode == "one":
        return (
            rng.getrandbits(width)
            | rng.getrandbits(width)
            | rng.getrandbits(width)
        )
    return rng.getrandbits(width)


def generate_candidate(
    ports: Sequence[Tuple[str, int]],
    ops: int,
    seed: int,
    index: int,
) -> List[Dict[str, int]]:
    """Seed candidate ``index``: one biased operand stream.

    The bias mode cycles with the index so every seeding pool covers
    all modes; ``hold`` redraws operands only every ``_HOLD_RUN``
    positions, parking the cone between toggles (the sparse-toggle
    pattern targeted wearout attacks favour).
    """
    rng = stream_rng("adversary.candidate", seed, index)
    mode = BIAS_MODES[index % len(BIAS_MODES)]
    stream: List[Dict[str, int]] = []
    held: Dict[str, int] = {}
    for i in range(ops):
        if mode == "hold":
            if i % _HOLD_RUN == 0 or not held:
                held = {name: rng.getrandbits(width) for name, width in ports}
            stream.append(dict(held))
        else:
            stream.append(
                {name: _draw_value(rng, width, mode) for name, width in ports}
            )
    return stream


def mutate_candidate(
    parent: Sequence[Mapping[str, int]],
    ports: Sequence[Tuple[str, int]],
    mutation_ops: int,
    seed: int,
    round_index: int,
    rank: int,
    mutant: int,
) -> List[Dict[str, int]]:
    """Hill-climb step: rewrite ``mutation_ops`` positions of a parent.

    The mutation stream is keyed by (round, beam rank, mutant index) —
    never by anything that depends on scheduling — so a resumed search
    regenerates exactly the mutants an uninterrupted one would.
    """
    rng = stream_rng("adversary.mutate", seed, round_index, rank, mutant)
    stream = [dict(op) for op in parent]
    mode = BIAS_MODES[rng.randrange(len(BIAS_MODES))]
    for _ in range(min(mutation_ops, len(stream))):
        pos = rng.randrange(len(stream))
        if mode == "hold" and pos > 0:
            stream[pos] = dict(stream[pos - 1])
        else:
            stream[pos] = {
                name: _draw_value(rng, width, mode) for name, width in ports
            }
    return stream


@dataclass
class AttackSearchResult:
    """Canonical outcome of one attacker-workload search.

    Wall-clock, worker counts, and resume provenance are deliberately
    excluded: the result is a pure function of (netlist, target,
    config), byte-identical across worker counts and across resumes.
    """

    unit: str
    seed: int
    candidates: int
    rounds: int
    beam: int
    mutations: int
    stream_ops: int
    mutation_ops: int
    lanes: int
    acceleration_cap: float
    target_pairs: List[List[str]]
    target_nets: int
    natural_stress: float
    best_stress: float
    stress_ratio: float
    acceleration: float
    best_digest: str
    evaluations: int
    history: List[Dict[str, float]]

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "AttackSearchResult":
        data = json.loads(text)
        data["target_pairs"] = [list(p) for p in data["target_pairs"]]
        return cls(**data)

    def summary(self) -> str:
        pairs = ", ".join(f"{s} ~> {e}" for s, e in self.target_pairs)
        return "\n".join(
            [
                f"attack search: {self.unit}, {self.evaluations} candidates "
                f"over {self.rounds} rounds (beam {self.beam})",
                f"  target: {pairs} ({self.target_nets} cone nets)",
                f"  stress duty: natural {self.natural_stress:.4f} -> "
                f"attack {self.best_stress:.4f} "
                f"(ratio {self.stress_ratio:.3f})",
                f"  onset acceleration: {self.acceleration:.2f}x "
                f"(cap {self.acceleration_cap:.1f}x)",
            ]
        )


class AttackSearch:
    """Beam search for the stress-maximizing operand stream.

    ``natural_profile`` supplies the baseline stress the victim cone
    sees under the representative workload; the search reports its best
    candidate's stress relative to it.  ``cache`` (optional) memoizes
    candidate profiles and round checkpoints.  ``resumed_rounds`` — how
    many rounds a resume skipped — is exposed for operators but never
    serialized into the result.
    """

    def __init__(
        self,
        netlist: Netlist,
        unit: str,
        natural_profile: SPProfile,
        pairs: Sequence[Tuple[str, str]],
        config: Optional[AdversaryConfig] = None,
        cache: Optional[ArtifactCache] = None,
    ):
        self.netlist = netlist
        self.unit = unit
        self.config = config or AdversaryConfig()
        self.cache = cache
        self.target = select_target(netlist, pairs)
        self.ports = _input_ports(netlist)
        self.natural_stress = stress_score(natural_profile, self.target)
        self.resumed_rounds = 0

    # -- keys -----------------------------------------------------------
    def search_key(self) -> str:
        """Identity of the search *prefix* every round extends.

        ``rounds`` and ``workers`` are deliberately excluded: round
        checkpoints are keyed by round index so a longer resumed search
        continues a shorter run's prefix, and worker count never
        changes any result.
        """
        cfg = self.config
        return ArtifactCache.digest(
            "adversary-search",
            self.netlist.structural_hash(),
            [list(p) for p in self.target.pairs],
            [list(n) for n in self.target.nets],
            cfg.seed,
            cfg.candidates,
            cfg.beam,
            cfg.mutations,
            cfg.stream_ops,
            cfg.mutation_ops,
            cfg.lanes,
            cfg.drain_cycles,
        )

    def _round_key(self, round_index: int) -> str:
        return ArtifactCache.digest(
            "adversary-round", self.search_key(), round_index
        )

    # -- scoring --------------------------------------------------------
    def _profile(self, stream: Sequence[Mapping[str, int]]) -> SPProfile:
        key = None
        if self.cache is not None:
            key = ArtifactCache.digest(
                "adversary-profile",
                self.netlist.structural_hash(),
                ArtifactCache.stream_digest(stream),
                self.config.lanes,
                self.config.drain_cycles,
            )
            hit = self.cache.load_profile(key)
            if hit is not None:
                return hit
        profile = profile_workload_streams(
            self.netlist,
            {"attack": stream},
            lanes=self.config.lanes,
            drain_cycles=self.config.drain_cycles,
            workers=self.config.workers,
        )
        if self.cache is not None and key is not None:
            self.cache.store_profile(key, profile)
        return profile

    def _score(self, stream: Sequence[Mapping[str, int]]) -> float:
        return round(stress_score(self._profile(stream), self.target), 9)

    # -- the search loop ------------------------------------------------
    def run(
        self, resume: bool = False
    ) -> Tuple[AttackSearchResult, List[Dict[str, int]]]:
        """Run (or resume) the search; return (result, best stream)."""
        cfg = self.config
        with telemetry.span(
            "adversary.search",
            unit=self.unit,
            seed=cfg.seed,
            rounds=cfg.rounds,
        ):
            start_round = 0
            history: List[Dict[str, float]] = []
            evaluations = 0
            # Beam entries are (score desc, stream digest, stream); the
            # digest tiebreak makes the ordering total, so equal-score
            # survivors are the same in every run.
            beam: List[Tuple[float, str, List[Dict[str, int]]]] = []
            if resume and self.cache is not None:
                for r in range(cfg.rounds, -1, -1):
                    payload = self.cache.load_checkpoint(self._round_key(r))
                    if (
                        isinstance(payload, dict)
                        and payload.get("version") == _CHECKPOINT_VERSION
                    ):
                        history = [dict(h) for h in payload["history"]]
                        evaluations = int(payload["evaluations"])
                        beam = [
                            (score, digest, [dict(op) for op in stream])
                            for score, digest, stream in payload["beam"]
                        ]
                        start_round = r + 1
                        self.resumed_rounds = r + 1
                        telemetry.add("adversary.rounds_resumed", r + 1)
                        break
            for r in range(start_round, cfg.rounds + 1):
                if r == 0:
                    fresh = [
                        generate_candidate(
                            self.ports, cfg.stream_ops, cfg.seed, i
                        )
                        for i in range(cfg.candidates)
                    ]
                else:
                    fresh = [
                        mutate_candidate(
                            stream, self.ports, cfg.mutation_ops,
                            cfg.seed, r, rank, mutant,
                        )
                        for rank, (_s, _d, stream) in enumerate(beam)
                        for mutant in range(cfg.mutations)
                    ]
                scored = list(beam)
                seen = {digest for _s, digest, _ in scored}
                for stream in fresh:
                    digest = ArtifactCache.stream_digest(stream)
                    if digest in seen:
                        continue
                    seen.add(digest)
                    scored.append((self._score(stream), digest, stream))
                    evaluations += 1
                scored.sort(key=lambda row: (-row[0], row[1]))
                beam = scored[: cfg.beam]
                history.append(
                    {
                        "round": r,
                        "best_stress": beam[0][0],
                        "evaluated": evaluations,
                    }
                )
                telemetry.event(
                    "adversary.round",
                    round=r,
                    best_stress=beam[0][0],
                    evaluated=evaluations,
                )
                if self.cache is not None:
                    self.cache.store_checkpoint(
                        self._round_key(r),
                        {
                            "version": _CHECKPOINT_VERSION,
                            "history": [dict(h) for h in history],
                            "evaluations": evaluations,
                            "beam": [
                                (s, d, [dict(op) for op in stream])
                                for s, d, stream in beam
                            ],
                        },
                    )
            best_stress, best_digest, best_stream = beam[0]
            if self.natural_stress > 0.0:
                ratio = best_stress / self.natural_stress
            else:
                ratio = cfg.acceleration_cap
            exponent = DEFAULT_BTI.duty_exponent / DEFAULT_BTI.time_exponent
            acceleration = min(
                cfg.acceleration_cap, max(1.0, ratio) ** exponent
            )
            result = AttackSearchResult(
                unit=self.unit,
                seed=cfg.seed,
                candidates=cfg.candidates,
                rounds=cfg.rounds,
                beam=cfg.beam,
                mutations=cfg.mutations,
                stream_ops=cfg.stream_ops,
                mutation_ops=cfg.mutation_ops,
                lanes=cfg.lanes,
                acceleration_cap=cfg.acceleration_cap,
                target_pairs=[list(p) for p in self.target.pairs],
                target_nets=len(self.target.nets),
                natural_stress=round(self.natural_stress, 9),
                best_stress=best_stress,
                stress_ratio=round(ratio, 9),
                acceleration=round(acceleration, 9),
                best_digest=best_digest,
                evaluations=evaluations,
                history=history,
            )
            telemetry.event(
                "adversary.search_done",
                stress_ratio=result.stress_ratio,
                acceleration=result.acceleration,
                evaluations=evaluations,
            )
            return result, best_stream
