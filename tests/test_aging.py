"""Tests for the BTI reaction-diffusion model and aging characterization."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging.bti import (
    DEFAULT_BTI,
    BtiParameters,
    cell_delta_vth,
    delay_factor,
    delta_vth,
    recovery_fraction,
    SECONDS_PER_YEAR,
)
from repro.aging.charlib import AgingTimingLibrary, degradation_curve
from repro.aging.corners import TYPICAL_CORNER, WORST_CORNER

YEARS_10 = 10 * SECONDS_PER_YEAR


class TestReactionDiffusion:
    def test_zero_time_zero_shift(self):
        assert delta_vth(0.0, 1.0, 105.0) == 0.0

    def test_zero_duty_zero_shift(self):
        assert delta_vth(YEARS_10, 0.0, 105.0) == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            delta_vth(-1.0, 0.5, 105.0)

    def test_bad_duty_rejected(self):
        with pytest.raises(ValueError):
            delta_vth(1.0, 1.5, 105.0)

    def test_front_loading_seventy_percent_in_first_year(self):
        """§2.3.3: ~70% of the 10-year Vth degradation occurs in year 1."""
        one_year = delta_vth(SECONDS_PER_YEAR, 1.0, 105.0)
        ten_years = delta_vth(YEARS_10, 1.0, 105.0)
        ratio = one_year / ten_years
        assert ratio == pytest.approx(0.1 ** (1 / 6), rel=1e-9)
        assert 0.65 < ratio < 0.72

    def test_hotter_ages_faster(self):
        cold = delta_vth(YEARS_10, 1.0, 25.0)
        hot = delta_vth(YEARS_10, 1.0, 105.0)
        assert hot > cold

    @given(
        duty=st.floats(min_value=0.01, max_value=1.0),
        years=st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_duty_and_time(self, duty, years):
        base = delta_vth(years * SECONDS_PER_YEAR, duty, 105.0)
        more_stress = delta_vth(years * SECONDS_PER_YEAR, min(1.0, duty * 1.5), 105.0)
        longer = delta_vth(years * 1.5 * SECONDS_PER_YEAR, duty, 105.0)
        assert more_stress >= base
        assert longer >= base

    def test_magnitude_calibration(self):
        """Full stress for 10y at 105C lands near 26 mV (library fit)."""
        shift = delta_vth(YEARS_10, 1.0, 105.0)
        assert 0.020 < shift < 0.032


class TestCellDeltaVth:
    def test_idle_at_zero_ages_fastest(self):
        """§2.3.1: gates idling at '0' age faster than gates at '1'."""
        at_zero = cell_delta_vth(0.0, 10, 105.0)
        toggling = cell_delta_vth(0.5, 10, 105.0)
        at_one = cell_delta_vth(1.0, 10, 105.0)
        assert at_zero > toggling > at_one
        assert at_one > 0  # n-type PBTI still contributes

    def test_stress_state_flips_asymmetry(self):
        normal = cell_delta_vth(0.1, 10, 105.0, stress_state=0)
        flipped = cell_delta_vth(0.9, 10, 105.0, stress_state=1)
        assert normal == pytest.approx(flipped)

    def test_sp_out_of_range(self):
        with pytest.raises(ValueError):
            cell_delta_vth(1.1, 10, 105.0)

    @given(sp=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_bounded_near_extremes(self, sp):
        # Parked-at-1 is the floor; the ceiling sits within a few percent
        # of parked-at-0 (a barely-toggling cell adds a sliver of PBTI).
        value = cell_delta_vth(sp, 10, 105.0)
        low = cell_delta_vth(1.0, 10, 105.0)
        high = cell_delta_vth(0.0, 10, 105.0)
        assert low <= value + 1e-12
        assert value <= high * 1.05

    @given(
        sp1=st.floats(min_value=0.1, max_value=1.0),
        sp2=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_decreasing_above_sp_0_1(self, sp1, sp2):
        lo, hi = sorted((sp1, sp2))
        assert cell_delta_vth(hi, 10, 105.0) <= cell_delta_vth(lo, 10, 105.0) + 1e-12


class TestDelayFactor:
    def test_zero_shift_is_unity(self):
        assert delay_factor(0.0, 0.9, 0.35, 1.3) == pytest.approx(1.0)

    def test_monotone_in_shift(self):
        f1 = delay_factor(0.01, 0.9, 0.35, 1.3)
        f2 = delay_factor(0.02, 0.9, 0.35, 1.3)
        assert 1.0 < f1 < f2

    def test_excessive_shift_rejected(self):
        with pytest.raises(ValueError):
            delay_factor(0.6, 0.9, 0.35, 1.3)


class TestRecovery:
    def test_no_recovery_without_rest(self):
        assert recovery_fraction(100.0, 0.0) == 0.0

    def test_recovery_bounded_at_half(self):
        assert recovery_fraction(1.0, 1e12) <= 0.5

    def test_recovery_grows_with_rest(self):
        a = recovery_fraction(100.0, 10.0)
        b = recovery_fraction(100.0, 1000.0)
        assert b > a


class TestAgingTimingLibrary:
    def test_characterize_covers_library(self, vega28):
        lib = AgingTimingLibrary.characterize(vega28)
        assert set(lib.tables) == set(c.name for c in vega28)

    def test_low_sp_degrades_more(self, vega28):
        lib = AgingTimingLibrary.characterize(vega28)
        assert lib.delay_factor("XOR2", 0.1) > lib.delay_factor("XOR2", 0.9)

    def test_factor_range_matches_figure8(self, vega28):
        """Worst cells around +6%, best (parked at 1) around +1-2%."""
        lib = AgingTimingLibrary.characterize(vega28)
        worst = lib.delay_factor("XOR2", 0.0) - 1.0
        best = lib.delay_factor("XOR2", 1.0) - 1.0
        assert 0.05 < worst < 0.08
        assert 0.005 < best < 0.025

    def test_interpolation_between_grid_points(self, vega28):
        lib = AgingTimingLibrary.characterize(vega28, sp_grid=(0.0, 1.0))
        mid = lib.delay_factor("AND2", 0.5)
        lo = lib.delay_factor("AND2", 0.0)
        hi = lib.delay_factor("AND2", 1.0)
        assert mid == pytest.approx((lo + hi) / 2)

    def test_unknown_cell_raises(self, vega28):
        lib = AgingTimingLibrary.characterize(vega28)
        with pytest.raises(KeyError):
            lib.delay_factor("NOPE", 0.5)

    def test_aged_delays_scale_both_bounds(self, vega28):
        lib = AgingTimingLibrary.characterize(vega28)
        cell = vega28["XOR2"]
        tmin, tmax = lib.aged_delays(cell, 0.2)
        factor = lib.delay_factor("XOR2", 0.2)
        assert tmin == pytest.approx(cell.tmin * factor)
        assert tmax == pytest.approx(cell.tmax * factor)

    def test_shorter_lifetime_less_aging(self, vega28):
        lib1 = AgingTimingLibrary.characterize(vega28, lifetime_years=1.0)
        lib10 = AgingTimingLibrary.characterize(vega28, lifetime_years=10.0)
        assert lib1.delay_factor("INV", 0.2) < lib10.delay_factor("INV", 0.2)


class TestDegradationCurve:
    """The Figure 4 regeneration: XOR2 delay degradation vs SP and time."""

    def test_curves_ordered_by_sp(self, vega28):
        years = [1, 2, 5, 10]
        low = degradation_curve(vega28["XOR2"], vega28, 0.1, years)
        high = degradation_curve(vega28["XOR2"], vega28, 0.9, years)
        assert all(l > h for l, h in zip(low, high))

    def test_curve_monotone_in_time(self, vega28):
        years = [0.5, 1, 2, 5, 10]
        curve = degradation_curve(vega28["XOR2"], vega28, 0.25, years)
        assert curve == sorted(curve)

    def test_curve_concave_front_loaded(self, vega28):
        """Most degradation lands early (t^(1/6) shape)."""
        curve = degradation_curve(vega28["XOR2"], vega28, 0.25, [1.0, 10.0])
        assert curve[0] > 0.6 * curve[1]


class TestCorners:
    def test_worst_corner_pessimism(self):
        assert WORST_CORNER.scale_max_delay(1.0) > 1.0
        assert WORST_CORNER.scale_min_delay(1.0) < 1.0

    def test_typical_corner_identity(self):
        assert TYPICAL_CORNER.scale_max_delay(1.0) == 1.0
        assert TYPICAL_CORNER.scale_min_delay(1.0) == 1.0
