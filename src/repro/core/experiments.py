"""Shared experiment driver for the paper's evaluation (§5).

One :class:`ExperimentContext` reproduces the full Vega pipeline for the
ALU and FPU under the paper's setup:

* representative workload: embench-style *minver* (§4);
* 10-year lifetime, worst corner, 3 % sign-off margin;
* FPU clock-gated except its always-on input-valid flop (the gating
  asymmetry behind the Table 3 hold violations);
* lifting with and without the §3.3.4 mitigation;
* failing netlists in the three C modes (0 / 1 / random).

Results are cached per context so every benchmark (Tables 3-7, Figures
8-9) shares one pipeline run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..aging.charlib import AgingTimingLibrary
from ..baselines.random_tests import random_suite
from ..core.config import (
    AgingAnalysisConfig,
    ErrorLiftingConfig,
    TestIntegrationConfig,
    VegaConfig,
)
from ..core.rng import stream_seed
from ..cpu.alu_design import build_alu
from ..cpu.cosim import GateAluBackend, GateFpuBackend, GateMduBackend
from ..cpu.fpu_design import build_fpu
from ..cpu.mdu_design import build_mdu
from ..cpu.mappers import AluMapper, FpuMapper, MduMapper
from ..integration.library_gen import AgingLibrary, DetectionResult
from ..lifting.lifter import ErrorLifter, LiftingReport
from ..lifting.models import CMode
from ..netlist.netlist import Netlist
from ..sim.probes import SPProfile, profile_operand_stream
from ..sta.aging_sta import AgingAwareSta, AgingStaResult
from ..workloads import REPRESENTATIVE, collect_unit_streams

#: Clock-network repeater chain per tree level (see ClockTree.build).
CLOCK_CHAIN_LENGTH = 24

#: Fraction of time the FPU's gated domain is clock-gated off.
FPU_GATING_DUTY = 0.96

#: The FPU flop that stays on the free-running clock (input handshake).
FPU_ALWAYS_ON = ("v_q_r0",)


@dataclass
class BaselineDetection:
    """Random-baseline detection split (Table 7).

    ``detected_pct`` counts every reported fault, including CPU stalls,
    matching §5.2.3's rule that a hung handshake is a detection.
    ``stalled_pct`` is the stall subset, reported separately so the
    table can show how much of the baseline's "coverage" is the machine
    wedging rather than a failed functional check.
    """

    detected_pct: float
    stalled_pct: float
    runs: int
    netlists: int

    @property
    def functional_pct(self) -> float:
        """Detections attributable to a failed check, not a stall."""
        return self.detected_pct - self.stalled_pct


@dataclass
class DetectionOutcome:
    """Table 6 bookkeeping for one failing netlist."""

    pair: Tuple[str, str]
    c_mode: str
    detected: bool
    by_earlier: bool = False
    by_later: bool = False
    stalled: bool = False
    detected_by: Optional[str] = None


class UnitExperiment:
    """Cached pipeline state for one functional unit."""

    def __init__(self, context: "ExperimentContext", unit: str):
        self.context = context
        self.unit = unit
        self._netlist: Optional[Netlist] = None
        self._profile: Optional[SPProfile] = None
        self._sta: Optional[AgingStaResult] = None
        self._lifting: Dict[bool, LiftingReport] = {}
        self._suites: Dict[bool, AgingLibrary] = {}
        self._failing = None

    # -- structural ------------------------------------------------------
    @property
    def netlist(self) -> Netlist:
        if self._netlist is None:
            builders = {"alu": build_alu, "fpu": build_fpu, "mdu": build_mdu}
            self._netlist = builders[self.unit]()
        return self._netlist

    @property
    def mapper(self):
        mappers = {"alu": AluMapper, "fpu": FpuMapper, "mdu": MduMapper}
        return mappers[self.unit]()

    def gated_instances(self) -> Dict[str, float]:
        if self.unit != "fpu":
            return {}
        return {
            dff.name: FPU_GATING_DUTY
            for dff in self.netlist.dffs()
            if dff.name not in FPU_ALWAYS_ON
        }

    # -- phase 1 -----------------------------------------------------------
    @property
    def sp_profile(self) -> SPProfile:
        if self._profile is None:
            stream = self.context.stream(self.unit)
            self._profile = profile_operand_stream(self.netlist, stream)
        return self._profile

    @property
    def sta_result(self) -> AgingStaResult:
        if self._sta is None:
            sta = AgingAwareSta(
                self.netlist,
                self.context.timing_lib,
                config=self.context.config.aging,
                gated_instances=self.gated_instances(),
                clock_chain_length=CLOCK_CHAIN_LENGTH,
            )
            self._sta = sta.analyze(self.sp_profile)
        return self._sta

    # -- phase 2 -----------------------------------------------------------
    def lifting(self, mitigation: bool, workers: int = 1) -> LiftingReport:
        """Lifting report (cached per mitigation flag).

        ``workers`` only affects how fast the first, uncached run goes —
        parallel and serial lifting produce identical reports.
        """
        if mitigation not in self._lifting:
            config = ErrorLiftingConfig(
                enable_mitigation=mitigation,
                bmc_depth=self.context.config.lifting.bmc_depth,
                bmc_conflict_budget=self.context.config.lifting.bmc_conflict_budget,
                workers=workers,
            )
            lifter = ErrorLifter(self.netlist, config, self.mapper)
            self._lifting[mitigation] = lifter.lift(self.sta_result.report)
        return self._lifting[mitigation]

    def suite(self, mitigation: bool) -> AgingLibrary:
        if mitigation not in self._suites:
            self._suites[mitigation] = AgingLibrary.from_lifting_report(
                self.lifting(mitigation),
                name=f"vega_{self.unit}" + ("_m" if mitigation else ""),
            )
        return self._suites[mitigation]

    def failing_netlists(self, constructed_only: bool = True):
        """Circuit-level failure models for the evaluation.

        Per §5.2.3, Tables 6 and 7 attack "each failing netlist
        associated with one of the generated test cases" — pairs whose
        violations are *proven unrealizable* (UR) yield failing
        netlists that behave identically to healthy silicon under
        mission-mode software, so there is nothing to detect.
        """
        if self._failing is None:
            lifter = ErrorLifter(self.netlist, mapper=self.mapper)
            self._failing = lifter.failing_netlists(self.sta_result.report)
        if not constructed_only:
            return self._failing
        constructed = {
            (pair.start, pair.end)
            for pair in self.lifting(False).pairs
            if pair.test_cases
        }
        return [
            f
            for f in self._failing
            if (f.model.start, f.model.end) in constructed
        ]

    def failure_models(self, constructed_only: bool = True):
        """The unit's circuit-level failure-model catalogue.

        The campaign sampler assigns these to faulty devices; the
        instrumented netlists themselves are built lazily by the device
        runner, so the catalogue stays cheap to pass across a fork.
        """
        return [
            f.model for f in self.failing_netlists(constructed_only)
        ]

    # -- phase 3 / evaluation -----------------------------------------------
    def backends_for(self, netlist: Netlist, seed: int = 0):
        """Backend kwargs with this unit replaced by ``netlist``."""
        if self.unit == "alu":
            return {"alu": GateAluBackend(netlist, seed=seed)}
        if self.unit == "mdu":
            return {"mdu": GateMduBackend(netlist, seed=seed)}
        return {"fpu": GateFpuBackend(netlist, seed=seed)}

    def run_suite_against(
        self, library: AgingLibrary, failing_netlist: Netlist, seed: int = 0
    ) -> DetectionResult:
        return library.run_suite(**self.backends_for(failing_netlist, seed=seed))

    def detection_outcomes(
        self,
        mitigation: bool,
        c_modes: Sequence[CMode] = (CMode.ZERO, CMode.ONE, CMode.RANDOM),
        seed: int = 0,
    ) -> List[DetectionOutcome]:
        """Run the suite against every failing netlist (Table 6).

        ``seed`` drives the co-simulation backend RNG (the per-cycle C
        of ``CMode.RANDOM`` models); it is threaded through explicitly
        so callers probing RNG sensitivity actually change the run.
        """
        library = self.suite(mitigation)
        order = library.order("sequential")
        outcomes: List[DetectionOutcome] = []
        for failing in self.failing_netlists():
            if failing.model.c_mode not in c_modes:
                continue
            pair = (failing.model.start, failing.model.end)
            own_positions = [
                position
                for position, test_index in enumerate(order)
                if (
                    library.test_cases[test_index].model.start,
                    library.test_cases[test_index].model.end,
                )
                == pair
            ]
            result = self.run_suite_against(
                library, failing.netlist, seed=seed
            )
            outcome = DetectionOutcome(
                pair=pair,
                c_mode=failing.model.c_mode.value,
                detected=result.detected,
                stalled=result.stalled,
                detected_by=result.detected_by,
            )
            if result.detected and not result.stalled:
                position = order.index(result.detected_index)
                if own_positions:
                    outcome.by_earlier = position < min(own_positions)
                    outcome.by_later = position > max(own_positions)
                else:
                    outcome.by_earlier = True  # no own test: any hit is early
            outcomes.append(outcome)
        return outcomes

    def random_detection_rate(
        self,
        c_mode: CMode,
        runs: int = 10,
        suite_size: Optional[int] = None,
    ) -> BaselineDetection:
        """Random-suite baseline detection split (Table 7).

        Each run draws a fresh random suite and backend seed from the
        named ``baseline.*`` RNG streams (the same
        :func:`~repro.core.rng.stream_seed` discipline the campaign
        sampler uses), so runs are independent and reproducible without
        magic seed arithmetic.
        """
        size = suite_size or max(1, len(self.suite(False).test_cases))
        failing = [
            f for f in self.failing_netlists() if f.model.c_mode is c_mode
        ]
        if not failing:
            return BaselineDetection(0.0, 0.0, runs, 0)
        detected = 0
        stalled = 0
        for run in range(runs):
            library = random_suite(
                self.unit, size, seed=stream_seed("baseline.random_suite", run)
            )
            backend_seed = stream_seed("baseline.backend", run) & 0xFFFFFFFF
            for fail in failing:
                result = self.run_suite_against(
                    library, fail.netlist, seed=backend_seed
                )
                detected += int(result.detected)
                stalled += int(result.stalled)
        total = runs * len(failing)
        return BaselineDetection(
            detected_pct=100.0 * detected / total,
            stalled_pct=100.0 * stalled / total,
            runs=runs,
            netlists=len(failing),
        )

    def vega_detection_rate(self, c_mode: CMode, mitigation: bool = False) -> float:
        outcomes = self.detection_outcomes(mitigation, c_modes=(c_mode,))
        if not outcomes:
            return 0.0
        return 100.0 * sum(o.detected for o in outcomes) / len(outcomes)


class ExperimentContext:
    """Top-level cache: one per evaluation run."""

    def __init__(self, config: Optional[VegaConfig] = None):
        self.config = config or VegaConfig(
            aging=AgingAnalysisConfig(
                clock_margin=0.03, max_paths_per_endpoint=100
            )
        )
        self._streams: Optional[Dict[str, list]] = None
        self._timing_lib: Optional[AgingTimingLibrary] = None
        self._units: Dict[str, UnitExperiment] = {}

    def stream(self, unit: str):
        """Operand stream for one unit's SP profiling.

        The ALU/FPU use the paper's representative workload (minver,
        §4); the MDU extension uses the RV32M matrix-multiply kernel,
        since minver never issues multiply instructions.
        """
        if self._streams is None:
            self._streams = collect_unit_streams([REPRESENTATIVE])
            self._streams["mdu"] = collect_unit_streams(["matmult_hw"])[
                "mdu"
            ]
        return self._streams[unit]

    @property
    def alu_stream(self):
        return self.stream("alu")

    @property
    def fpu_stream(self):
        return self.stream("fpu")

    @property
    def timing_lib(self) -> AgingTimingLibrary:
        if self._timing_lib is None:
            from ..netlist.cells import VEGA28

            self._timing_lib = AgingTimingLibrary.characterize(
                VEGA28,
                lifetime_years=self.config.aging.lifetime_years,
                temperature_c=self.config.aging.temperature_c,
            )
        return self._timing_lib

    def unit(self, name: str) -> UnitExperiment:
        if name not in self._units:
            self._units[name] = UnitExperiment(self, name)
        return self._units[name]

    @property
    def alu(self) -> UnitExperiment:
        return self.unit("alu")

    @property
    def fpu(self) -> UnitExperiment:
        return self.unit("fpu")


_DEFAULT_CONTEXT: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """Process-wide shared context (used by the benchmark suite)."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT
